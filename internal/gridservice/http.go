// HTTP layer of the broker: the gridd daemon in -topology (grid) mode.
// The JSON API mirrors the single-engine service API and adds campaign
// management plus fleet-wide aggregation; /metrics labels every
// per-cluster series with {cluster="<name>"}.
package gridservice

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/service"
)

// Handler returns the broker HTTP API. Every legacy route is also
// served under /v1 (same handlers), and runs mounts the shared
// run-lifecycle API (POST /v1/runs, status, SSE events, cancel, plus
// the legacy POST /scenarios shim):
//
//	POST /jobs           submit a JobSpec (optional "cluster" pin), 202
//	GET  /jobs/{id}      status of one job (includes its cluster)
//	POST /campaigns      submit a CampaignSpec, returns the Campaign (202)
//	GET  /campaigns      all campaigns
//	GET  /campaigns/{id} one campaign
//	GET  /stats          fleet-wide + per-cluster statistics + runs summary
//	GET  /metrics        Prometheus text, per-cluster labels
//	GET  /policies       local policy catalog + grid policy catalog
//	GET  /topology       the filled fleet configuration
//
// A nil runs service gets a default-config one (tests; cmd/gridd
// passes its flag-configured instance).
func (b *Broker) Handler(runs *api.RunService) http.Handler {
	if runs == nil {
		runs = api.NewRunService(api.Config{})
	}
	mux := http.NewServeMux()
	api.RegisterBoth(mux, "POST /jobs", b.handleSubmit)
	api.RegisterBoth(mux, "GET /jobs/{id}", b.handleJob)
	api.RegisterBoth(mux, "POST /campaigns", b.handleSubmitCampaign)
	api.RegisterBoth(mux, "GET /campaigns", b.handleCampaigns)
	api.RegisterBoth(mux, "GET /campaigns/{id}", b.handleCampaign)
	api.RegisterBoth(mux, "GET /stats", b.statsHandler(runs))
	api.RegisterBoth(mux, "GET /metrics", b.metricsHandler(runs))
	api.RegisterBoth(mux, "GET /policies", b.handlePolicies)
	api.RegisterBoth(mux, "GET /topology", b.handleTopology)
	runs.Mount(mux)
	return api.Wrap(mux, runs.Config().MaxBody, runs.Config().Log)
}

func (b *Broker) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		service.WriteJSON(w, http.StatusBadRequest, service.APIError{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	st, err := b.Submit(spec)
	switch {
	case errors.Is(err, cluster.ErrDrained) || errors.Is(err, service.ErrStopped):
		service.WriteJSON(w, http.StatusServiceUnavailable, service.APIError{Error: err.Error()})
	case err != nil:
		service.WriteJSON(w, http.StatusBadRequest, service.APIError{Error: err.Error()})
	default:
		service.WriteJSON(w, http.StatusAccepted, st)
	}
}

func (b *Broker) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		service.WriteJSON(w, http.StatusBadRequest, service.APIError{Error: "job id must be an integer"})
		return
	}
	st, ok, err := b.Job(id)
	if err != nil {
		service.WriteJSON(w, http.StatusServiceUnavailable, service.APIError{Error: err.Error()})
		return
	}
	if !ok {
		service.WriteJSON(w, http.StatusNotFound, service.APIError{Error: fmt.Sprintf("unknown job %d", id)})
		return
	}
	service.WriteJSON(w, http.StatusOK, st)
}

func (b *Broker) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		service.WriteJSON(w, http.StatusBadRequest, service.APIError{Error: fmt.Sprintf("bad campaign spec: %v", err)})
		return
	}
	c, err := b.SubmitCampaign(spec)
	if err != nil {
		service.WriteJSON(w, http.StatusBadRequest, service.APIError{Error: err.Error()})
		return
	}
	service.WriteJSON(w, http.StatusAccepted, c)
}

func (b *Broker) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	out := b.Campaigns()
	if out == nil {
		out = []Campaign{}
	}
	service.WriteJSON(w, http.StatusOK, out)
}

func (b *Broker) handleCampaign(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		service.WriteJSON(w, http.StatusBadRequest, service.APIError{Error: "campaign id must be an integer"})
		return
	}
	c, ok := b.CampaignStatus(id)
	if !ok {
		service.WriteJSON(w, http.StatusNotFound, service.APIError{Error: fmt.Sprintf("unknown campaign %d", id)})
		return
	}
	service.WriteJSON(w, http.StatusOK, c)
}

// statsHandler serves /stats: fleet statistics plus the scenario runs
// summary, read from the same run store the /v1/runs endpoints serve
// (single source of truth for run state).
func (b *Broker) statsHandler(runs *api.RunService) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := b.Stats()
		if err != nil {
			service.WriteJSON(w, http.StatusServiceUnavailable, service.APIError{Error: err.Error()})
			return
		}
		sum := runs.Summary()
		st.Runs = &sum
		service.WriteJSON(w, http.StatusOK, st)
	}
}

// metricsHandler renders fleet and per-cluster series in Prometheus
// text exposition format, plus the run-store series shared with the
// single-cluster mode. Per-cluster series carry a {cluster="name"}
// label.
func (b *Broker) metricsHandler(runs *api.RunService) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := b.Stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		head := func(name, help, typ string) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		}
		fleet := func(name, help, typ string, v float64) {
			head(name, help, typ)
			fmt.Fprintf(w, "%s %g\n", name, v)
		}
		perCluster := func(name, help, typ string, get func(s service.Stats) float64) {
			head(name, help, typ)
			for _, c := range st.Clusters {
				fmt.Fprintf(w, "%s{cluster=%q} %g\n", name, c.Name, get(c.Stats))
			}
		}
		fleet("gridd_fleet_clusters", "Clusters in the fleet.", "gauge", float64(st.Fleet.Clusters))
		fleet("gridd_fleet_processors", "Total processors across the fleet.", "gauge", float64(st.Fleet.Procs))
		fleet("gridd_fleet_jobs_submitted_total", "Jobs accepted by the broker since start.", "counter", float64(st.Fleet.Submitted))
		fleet("gridd_fleet_jobs_completed_total", "Jobs completed across the fleet.", "counter", float64(st.Fleet.Completed))
		fleet("gridd_fleet_jobs_waiting", "Jobs waiting across the fleet.", "gauge", float64(st.Fleet.Waiting))
		fleet("gridd_fleet_jobs_running", "Jobs running across the fleet.", "gauge", float64(st.Fleet.Running))
		fleet("gridd_fleet_migrations_total", "Queued jobs migrated between clusters.", "counter", float64(st.Fleet.Migrations))
		fleet("gridd_fleet_campaigns_total", "Campaigns accepted.", "counter", float64(st.Fleet.Campaigns))
		fleet("gridd_fleet_campaigns_done", "Campaigns fully completed.", "gauge", float64(st.Fleet.CampaignsDone))
		fleet("gridd_fleet_campaign_stock", "Campaign tasks waiting in the central stock.", "gauge", float64(st.Fleet.Stock))
		fleet("gridd_fleet_best_effort_completed_total", "Best-effort tasks completed fleet-wide.", "counter", float64(st.Fleet.BestEffort.Completed))
		fleet("gridd_fleet_best_effort_killed_total", "Best-effort tasks killed fleet-wide.", "counter", float64(st.Fleet.BestEffort.Killed))
		fleet("gridd_fleet_virtual_time_seconds", "Fleet virtual clock (max across clusters).", "gauge", st.Fleet.VirtualNow)
		fleet("gridd_fleet_uptime_seconds", "Broker wall-clock uptime.", "gauge", st.Fleet.UptimeSeconds)
		perCluster("gridd_cluster_processors", "Cluster width.", "gauge",
			func(s service.Stats) float64 { return float64(s.M) })
		// Gauge, not counter: migrations move tracked jobs between clusters,
		// so the per-cluster value can decrease.
		perCluster("gridd_cluster_jobs_tracked", "Jobs tracked by this cluster (migrations move them).", "gauge",
			func(s service.Stats) float64 { return float64(s.Submitted) })
		perCluster("gridd_cluster_jobs_completed_total", "Jobs completed on this cluster.", "counter",
			func(s service.Stats) float64 { return float64(s.Completed) })
		perCluster("gridd_cluster_jobs_waiting", "Jobs waiting on this cluster.", "gauge",
			func(s service.Stats) float64 { return float64(s.Waiting) })
		perCluster("gridd_cluster_jobs_running", "Jobs running on this cluster.", "gauge",
			func(s service.Stats) float64 { return float64(s.Running) })
		perCluster("gridd_cluster_utilization_ratio", "Processor-time utilization.", "gauge",
			func(s service.Stats) float64 { return s.Report.Utilization })
		perCluster("gridd_cluster_mean_flow_seconds", "Mean flow over completed jobs.", "gauge",
			func(s service.Stats) float64 { return s.Report.MeanFlow })
		perCluster("gridd_cluster_best_effort_completed_total", "Best-effort tasks completed here.", "counter",
			func(s service.Stats) float64 { return float64(s.BestEffort.Completed) })
		perCluster("gridd_cluster_best_effort_killed_total", "Best-effort tasks killed here.", "counter",
			func(s service.Stats) float64 { return float64(s.BestEffort.Killed) })
		perCluster("gridd_cluster_virtual_time_seconds", "Cluster virtual clock.", "gauge",
			func(s service.Stats) float64 { return s.VirtualNow })
		api.WriteRunMetrics(w, runs.Summary())
		metrics.WriteTraceMetrics(w)
	}
}

type gridPolicyInfo struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Exchanges bool   `json:"exchanges"`
	Desc      string `json:"desc"`
}

type policyCatalog struct {
	Local []service.PolicyInfo `json:"local"`
	Grid  []gridPolicyInfo     `json:"grid"`
}

func (b *Broker) handlePolicies(w http.ResponseWriter, r *http.Request) {
	out := policyCatalog{Local: service.CatalogPolicies()}
	for _, e := range registry.Grids() {
		kind := "routing"
		if e.Exchanges {
			kind = "routing+exchange"
		}
		out.Grid = append(out.Grid, gridPolicyInfo{
			Name: e.Name, Kind: kind, Exchanges: e.Exchanges, Desc: e.Desc,
		})
	}
	service.WriteJSON(w, http.StatusOK, out)
}

func (b *Broker) handleTopology(w http.ResponseWriter, r *http.Request) {
	service.WriteJSON(w, http.StatusOK, b.Topology())
}
