package gridservice

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/api"
	_ "repro/internal/experiments" // register scenario kinds + catalog
	"repro/internal/scenario"
)

// TestBrokerScenariosEndpoint: broker mode serves the same POST
// /scenarios as the single-cluster daemon, returning the CLI's table.
func TestBrokerScenariosEndpoint(t *testing.T) {
	_, srv := startTestBroker(t)
	resp, body := postJSON(t, srv.URL+"/scenarios", `{"id":"treedlt","quick":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got scenario.HTTPResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	spec, _ := scenario.Lookup("treedlt")
	want, err := scenario.Run(spec, scenario.RunOptions{Seed: 42, Scale: scenario.Scale{JobFactor: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Table.Rows) {
		t.Fatalf("broker table differs from engine:\n got %+v\nwant %+v", got.Rows, want.Table.Rows)
	}
}

// TestBrokerStatsRunsSingleSource: the broker's fleet-wide /stats runs
// section must equal an aggregation recomputed from the /v1/runs
// listing — both read the same run store, so any divergence is a bug.
func TestBrokerStatsRunsSingleSource(t *testing.T) {
	_, srv := startTestBroker(t)

	// One synchronous shim run + one async /v1 run, both stored.
	if resp, body := postJSON(t, srv.URL+"/scenarios", `{"id":"treedlt","quick":true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("shim: %d %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, srv.URL+"/v1/runs", `{"id":"mrt","quick":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("v1 submit: %d %s", resp.StatusCode, body)
	}
	var sub api.RunStatus
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st api.RunStatus
		if code := getJSON(t, srv.URL+"/v1/runs/"+sub.ID, &st); code != http.StatusOK {
			t.Fatalf("run status: %d", code)
		}
		if st.State.Terminal() {
			if st.State != api.RunDone {
				t.Fatalf("run ended %q: %s", st.State, st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var fleet FleetStats
	if code := getJSON(t, srv.URL+"/stats", &fleet); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if fleet.Runs == nil {
		t.Fatal("stats has no runs section")
	}
	var list []api.RunStatus
	if code := getJSON(t, srv.URL+"/v1/runs", &list); code != http.StatusOK {
		t.Fatalf("runs list: %d", code)
	}
	recomputed := api.RunsSummary{Evicted: fleet.Runs.Evicted}
	for _, st := range list {
		recomputed.Total++
		switch st.State {
		case api.RunDone:
			recomputed.Done++
			recomputed.ResultRows += st.Rows
		case api.RunFailed:
			recomputed.Failed++
		case api.RunCancelled:
			recomputed.Cancelled++
		case api.RunQueued:
			recomputed.Queued++
		case api.RunRunning:
			recomputed.Running++
		}
		recomputed.CellsDone += st.CellsDone
		recomputed.CellsTotal += st.CellsTotal
	}
	if *fleet.Runs != recomputed {
		t.Fatalf("/stats runs diverges from /v1/runs:\nstats: %+v\n  v1: %+v", *fleet.Runs, recomputed)
	}
	if recomputed.Done != 2 || recomputed.ResultRows == 0 {
		t.Fatalf("unexpected aggregation %+v", recomputed)
	}
}
