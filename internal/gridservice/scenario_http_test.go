package gridservice

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	_ "repro/internal/experiments" // register scenario kinds + catalog
	"repro/internal/scenario"
)

// TestBrokerScenariosEndpoint: broker mode serves the same POST
// /scenarios as the single-cluster daemon, returning the CLI's table.
func TestBrokerScenariosEndpoint(t *testing.T) {
	_, srv := startTestBroker(t)
	resp, body := postJSON(t, srv.URL+"/scenarios", `{"id":"treedlt","quick":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got scenario.HTTPResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	spec, _ := scenario.Lookup("treedlt")
	want, err := scenario.Run(spec, scenario.RunOptions{Seed: 42, Scale: scenario.Scale{JobFactor: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Table.Rows) {
		t.Fatalf("broker table differs from engine:\n got %+v\nwant %+v", got.Rows, want.Table.Rows)
	}
}
