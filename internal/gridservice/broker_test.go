package gridservice

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/workload"
)

// fleetTopo builds a homogeneous free-running test fleet.
func fleetTopo(k, m int, gridPolicy string) Topology {
	t := Topology{GridPolicy: gridPolicy, TickMS: 2}
	for i := 0; i < k; i++ {
		t.Clusters = append(t.Clusters, ClusterSpec{M: m})
	}
	return t
}

// testJobs generates the shared rigid arrival stream.
func testJobs(n, m int, seed uint64) []*workload.Job {
	return workload.Parallel(workload.GenConfig{
		N: n, M: m, Seed: seed, ArrivalRate: 0.3, RigidFraction: 1, MaxProcsCap: m,
	})
}

func cloneAll(jobs []*workload.Job) []*workload.Job {
	out := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}

type completionKey struct {
	start, end float64
	procs      int
}

// TestBrokerCentralizedMatchesOffline is the §5.2 determinism witness:
// a trace replayed through the live 4-cluster broker under the
// centralized grid policy must produce, on every cluster, exactly the
// local completions of the offline grid.Centralized run over the same
// round-robin split — and the campaign must complete in full on both.
func TestBrokerCentralizedMatchesOffline(t *testing.T) {
	const k, m, n, tasks = 4, 16, 120, 300
	const runTime = 7.0
	jobs := testJobs(n, m, 5)

	// Offline reference: one DES, four member sims, central CiGri server.
	split := grid.SplitJobsRoundRobin(cloneAll(jobs), k)
	var members []grid.Member
	for i := 0; i < k; i++ {
		members = append(members, grid.Member{
			Cluster: &platform.Cluster{Name: "ref", Nodes: m, ProcsPerNode: 1, Speed: 1},
			Policy:  cluster.EASYPolicy{},
			Local:   split[i],
		})
	}
	bags := []*workload.Bag{{ID: 0, Runs: tasks, RunTime: runTime, Name: "campaign"}}
	off, err := grid.NewCentralized(members, bags, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := off.Run(); err != nil {
		t.Fatal(err)
	}
	if got := off.Stats().TasksCompleted; got != tasks {
		t.Fatalf("offline completed %d of %d tasks", got, tasks)
	}

	// Live broker over the same stream.
	b, err := NewBroker(fleetTopo(k, m, "centralized"))
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Stop()
	if err := b.SubmitBatch(cloneAll(jobs)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubmitCampaign(CampaignSpec{Name: "campaign", Tasks: tasks, RunTime: runTime}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := b.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if st.Fleet.Completed != n {
		t.Fatalf("fleet completed %d of %d local jobs", st.Fleet.Completed, n)
	}
	if st.Fleet.BestEffort.Completed != tasks {
		t.Fatalf("fleet completed %d of %d campaign tasks", st.Fleet.BestEffort.Completed, tasks)
	}
	c, ok := b.CampaignStatus(0)
	if !ok || !c.Done || c.Completed != tasks {
		t.Fatalf("campaign status %+v", c)
	}
	sum := 0
	for _, pc := range c.PerCluster {
		sum += pc
	}
	if sum != tasks {
		t.Fatalf("per-cluster campaign counts sum to %d", sum)
	}

	// Per-cluster local completions: identical job sets with identical
	// start/end times — best-effort interference never shifts local work.
	for i := 0; i < k; i++ {
		want := map[int]completionKey{}
		for _, cpl := range off.LocalCompletions(i) {
			want[cpl.Job.ID] = completionKey{start: cpl.Start, end: cpl.End, procs: cpl.Procs}
		}
		got, err := b.Engine(i).Completions()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cluster %d: %d completions, offline has %d", i, len(got), len(want))
		}
		for _, cpl := range got {
			w, ok := want[cpl.Job.ID]
			if !ok {
				t.Fatalf("cluster %d ran job %d, offline did not", i, cpl.Job.ID)
			}
			if w.start != cpl.Start || w.end != cpl.End || w.procs != cpl.Procs {
				t.Fatalf("cluster %d job %d: (%.6g,%.6g,%d) vs offline (%.6g,%.6g,%d)",
					i, cpl.Job.ID, cpl.Start, cpl.End, cpl.Procs, w.start, w.end, w.procs)
			}
		}
	}
}

// TestBrokerAllGridPoliciesComplete drives every catalogued grid policy
// through the same replay + campaign and requires full completion —
// the race-clean acceptance sweep (run with -race in CI).
func TestBrokerAllGridPoliciesComplete(t *testing.T) {
	const k, m, n, tasks = 4, 16, 80, 150
	jobs := testJobs(n, m, 9)
	for _, entry := range registry.Grids() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			topo := fleetTopo(k, m, entry.Name)
			topo.Seed = 3
			b, err := NewBroker(topo)
			if err != nil {
				t.Fatal(err)
			}
			b.Start()
			defer b.Stop()
			if err := b.SubmitBatch(cloneAll(jobs)); err != nil {
				t.Fatal(err)
			}
			if _, err := b.SubmitCampaign(CampaignSpec{Tasks: tasks, RunTime: 3}); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			st, err := b.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.Fleet.Completed != n {
				t.Fatalf("completed %d of %d local jobs", st.Fleet.Completed, n)
			}
			if st.Fleet.BestEffort.Completed != tasks {
				t.Fatalf("completed %d of %d campaign tasks", st.Fleet.BestEffort.Completed, tasks)
			}
			perEngine := 0
			for _, cs := range st.Clusters {
				perEngine += cs.Stats.Completed
			}
			if perEngine != n {
				t.Fatalf("per-cluster completions sum to %d", perEngine)
			}
		})
	}
}

// TestBrokerReplayReproducible runs the same batch twice through fresh
// brokers for every grid policy: routing must not depend on wall-clock
// state, so the per-cluster job sets must be identical.
func TestBrokerReplayReproducible(t *testing.T) {
	const k, m, n = 4, 16, 60
	jobs := testJobs(n, m, 13)
	for _, entry := range registry.Grids() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			counts := make([][]int, 2)
			for run := 0; run < 2; run++ {
				topo := fleetTopo(k, m, entry.Name)
				topo.Seed = 21
				b, err := NewBroker(topo)
				if err != nil {
					t.Fatal(err)
				}
				b.Start()
				if err := b.SubmitBatch(cloneAll(jobs)); err != nil {
					b.Stop()
					t.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				st, err := b.Drain(ctx)
				cancel()
				if err != nil {
					b.Stop()
					t.Fatal(err)
				}
				for _, cs := range st.Clusters {
					counts[run] = append(counts[run], cs.Stats.Completed)
				}
				b.Stop()
			}
			for i := range counts[0] {
				if counts[0][i] != counts[1][i] {
					t.Fatalf("replay diverged: run0 %v vs run1 %v", counts[0], counts[1])
				}
			}
		})
	}
}

// TestBrokerPacedKillsAndRedistributes exercises the live CiGri contract
// under a shared paced clock: campaign tasks saturate the fleet, local
// jobs arrive in wall time and evict them, and every killed task drifts
// back through the central stock until the campaign completes.
func TestBrokerPacedKillsAndRedistributes(t *testing.T) {
	const k, m = 4, 4
	topo := fleetTopo(k, m, "centralized")
	topo.Dilation = 200 // 200 virtual seconds per wall second
	topo.TickMS = 5
	b, err := NewBroker(topo)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Stop()

	// Fill all 16 processors with long best-effort tasks first.
	camp, err := b.SubmitCampaign(CampaignSpec{Tasks: 30, RunTime: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Give the fan-out a head start, then flood with full-width local
	// jobs released across the first 100 virtual seconds.
	time.Sleep(100 * time.Millisecond)
	var jobs []*workload.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, &workload.Job{
			ID: i, Kind: workload.Rigid, Weight: 1, DueDate: -1,
			Release: float64(i * 8), SeqTime: 30 * float64(m),
			MinProcs: m, MaxProcs: m, Model: workload.Linear{},
		})
	}
	if err := b.SubmitBatch(jobs); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := b.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fleet.Completed != len(jobs) {
		t.Fatalf("completed %d of %d local jobs", st.Fleet.Completed, len(jobs))
	}
	if st.Fleet.BestEffort.Completed != camp.Tasks {
		t.Fatalf("completed %d of %d campaign tasks", st.Fleet.BestEffort.Completed, camp.Tasks)
	}
	if st.Fleet.BestEffort.Killed == 0 {
		t.Fatal("no kills despite full-width local jobs over a saturated fleet")
	}
	c, _ := b.CampaignStatus(camp.ID)
	if !c.Done || c.Killed == 0 {
		t.Fatalf("campaign %+v: want done with kills recorded", c)
	}
}

// TestBrokerRoutingControls covers explicit cluster pins and rejection
// paths.
func TestBrokerRoutingControls(t *testing.T) {
	topo := Topology{
		GridPolicy: "least-loaded",
		Clusters: []ClusterSpec{
			{Name: "small", M: 4},
			{Name: "big", M: 32},
		},
	}
	b, err := NewBroker(topo)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Stop()

	// A 16-proc job can only go to "big".
	st, err := b.Submit(serviceSpec(16))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster != "big" {
		t.Fatalf("16-proc job routed to %q", st.Cluster)
	}
	// Pinning to a too-small cluster is rejected.
	sp := serviceSpec(16)
	sp.Cluster = "small"
	if _, err := b.Submit(sp); err == nil {
		t.Fatal("oversized pinned job accepted")
	}
	// Pinning to an unknown cluster is rejected.
	sp = serviceSpec(1)
	sp.Cluster = "nope"
	if _, err := b.Submit(sp); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	// A job too wide for every cluster is rejected with ErrNoCluster.
	if _, err := b.Submit(serviceSpec(64)); err == nil {
		t.Fatal("fleet-oversized job accepted")
	}
	// Pinned placement works.
	sp = serviceSpec(2)
	sp.Cluster = "small"
	st, err = b.Submit(sp)
	if err != nil || st.Cluster != "small" {
		t.Fatalf("pin to small: %v, %+v", err, st)
	}
	// Status lookup resolves through the home map.
	got, ok, err := b.Job(st.ID)
	if err != nil || !ok || got.Cluster != "small" {
		t.Fatalf("job lookup: %v %v %+v", ok, err, got)
	}
	if _, ok, _ := b.Job(9999); ok {
		t.Fatal("unknown job resolved")
	}
}

// TestBrokerDecentralizedMigrates checks the live exchange protocol:
// all load lands on one cluster, the broker must move queued jobs.
func TestBrokerDecentralizedMigrates(t *testing.T) {
	const k, m = 3, 8
	topo := fleetTopo(k, m, "decentralized")
	topo.Dilation = 500
	topo.TickMS = 2
	topo.MaxMove = 8
	topo.Threshold = 1.2
	b, err := NewBroker(topo)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Stop()
	// Pin a pile of work onto cluster 0 so its queue towers over the rest.
	for i := 0; i < 24; i++ {
		sp := serviceSpec(4)
		sp.SeqTime = 400
		sp.Cluster = "c0"
		if _, err := b.Submit(sp); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := b.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Fleet.Migrations > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no migrations despite extreme skew")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := b.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fleet.Completed != 24 {
		t.Fatalf("completed %d of 24 after migration", st.Fleet.Completed)
	}
	moved := 0
	for _, cs := range st.Clusters[1:] {
		moved += cs.Stats.Completed
	}
	if moved == 0 {
		t.Fatal("migrated jobs completed nowhere else")
	}
}

func serviceSpec(minProcs int) service.JobSpec {
	return service.JobSpec{SeqTime: 10 * float64(minProcs), MinProcs: minProcs}
}
