package gridservice

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

func startTestBroker(t *testing.T) (*Broker, *httptest.Server) {
	t.Helper()
	b, err := NewBroker(fleetTopo(4, 16, "centralized"))
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	runs := api.NewRunService(api.Config{})
	srv := httptest.NewServer(b.Handler(runs))
	t.Cleanup(func() {
		srv.Close()
		runs.Close()
		b.Stop()
	})
	return b, srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestBrokerHTTPJobLifecycle(t *testing.T) {
	_, srv := startTestBroker(t)

	resp, body := postJSON(t, srv.URL+"/jobs", `{"seq_time": 20, "min_procs": 2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == "" {
		t.Fatalf("no cluster in %s", body)
	}

	// Pinned submission lands on the named cluster.
	resp, body = postJSON(t, srv.URL+"/jobs", `{"seq_time": 5, "min_procs": 1, "cluster": "c2"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pinned submit: %d %s", resp.StatusCode, body)
	}
	var pinned JobStatus
	if err := json.Unmarshal(body, &pinned); err != nil {
		t.Fatal(err)
	}
	if pinned.Cluster != "c2" {
		t.Fatalf("pinned to %q", pinned.Cluster)
	}

	var got JobStatus
	if code := getJSON(t, fmt.Sprintf("%s/jobs/%d", srv.URL, pinned.ID), &got); code != http.StatusOK {
		t.Fatalf("job lookup: %d", code)
	}
	if got.Cluster != "c2" || got.ID != pinned.ID {
		t.Fatalf("lookup %+v", got)
	}

	if code := getJSON(t, srv.URL+"/jobs/99999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}
	if code := getJSON(t, srv.URL+"/jobs/abc", nil); code != http.StatusBadRequest {
		t.Fatalf("bad job id: %d", code)
	}
	if resp, _ := postJSON(t, srv.URL+"/jobs", `{"seq_time": -1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/jobs", `{"seq_time": 1, "cluster": "nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown cluster: %d", resp.StatusCode)
	}
}

func TestBrokerHTTPCampaignAndStats(t *testing.T) {
	_, srv := startTestBroker(t)

	resp, body := postJSON(t, srv.URL+"/campaigns", `{"name": "sweep", "tasks": 48, "run_time": 2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("campaign: %d %s", resp.StatusCode, body)
	}
	var camp Campaign
	if err := json.Unmarshal(body, &camp); err != nil {
		t.Fatal(err)
	}
	if camp.Tasks != 48 || camp.Name != "sweep" {
		t.Fatalf("campaign %+v", camp)
	}

	// Free-running fleet: the fan-out completes within a few ticks.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var c Campaign
		if code := getJSON(t, fmt.Sprintf("%s/campaigns/%d", srv.URL, camp.ID), &c); code != http.StatusOK {
			t.Fatalf("campaign status: %d", code)
		}
		if c.Done {
			if c.Completed != 48 {
				t.Fatalf("done with %d of 48", c.Completed)
			}
			sum := 0
			for _, n := range c.PerCluster {
				sum += n
			}
			if sum != 48 {
				t.Fatalf("per-cluster sums to %d", sum)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never completed: %+v", c)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var list []Campaign
	if code := getJSON(t, srv.URL+"/campaigns", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("campaign list: %d %v", code, list)
	}
	if code := getJSON(t, srv.URL+"/campaigns/99", nil); code != http.StatusNotFound {
		t.Fatalf("unknown campaign: %d", code)
	}
	if resp, _ := postJSON(t, srv.URL+"/campaigns", `{"tasks": 0, "run_time": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty campaign: %d", resp.StatusCode)
	}

	var st FleetStats
	if code := getJSON(t, srv.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Fleet.Clusters != 4 || st.Fleet.Procs != 64 {
		t.Fatalf("fleet %+v", st.Fleet)
	}
	if st.Fleet.BestEffort.Completed != 48 {
		t.Fatalf("fleet best-effort %+v", st.Fleet.BestEffort)
	}
	if len(st.Clusters) != 4 || st.Clusters[2].Name != "c2" {
		t.Fatalf("per-cluster stats %+v", st.Clusters)
	}
	if st.GridPolicy != "centralized" {
		t.Fatalf("grid policy %q", st.GridPolicy)
	}
}

func TestBrokerHTTPMetricsAndCatalogs(t *testing.T) {
	_, srv := startTestBroker(t)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"gridd_fleet_clusters 4",
		"gridd_fleet_processors 64",
		`gridd_cluster_jobs_completed_total{cluster="c0"}`,
		`gridd_cluster_processors{cluster="c3"} 16`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	var cat policyCatalog
	if code := getJSON(t, srv.URL+"/policies", &cat); code != http.StatusOK {
		t.Fatalf("policies: %d", code)
	}
	if len(cat.Local) == 0 || len(cat.Grid) < 4 {
		t.Fatalf("catalog %d local, %d grid", len(cat.Local), len(cat.Grid))
	}

	var topo Topology
	if code := getJSON(t, srv.URL+"/topology", &topo); code != http.StatusOK {
		t.Fatalf("topology: %d", code)
	}
	if len(topo.Clusters) != 4 || topo.GridPolicy != "centralized" {
		t.Fatalf("topology %+v", topo)
	}
}
