// Topology configuration of a broker fleet: how many clusters, their
// sizes, speeds and local queue policies, plus the grid routing policy
// that binds them. Loaded from a JSON file by `gridd -topology`.
package gridservice

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/registry"
	"repro/internal/scenario"
)

// ClusterSpec describes one cluster of the fleet. Zero fields inherit
// the topology defaults.
type ClusterSpec struct {
	// Name labels the cluster (job placement, stats, Prometheus).
	Name string `json:"name"`
	// M is the processor count.
	M int `json:"m"`
	// Speed is the cluster speed factor (CIMENT heterogeneity).
	Speed float64 `json:"speed"`
	// Policy is the local queue policy (registry name).
	Policy string `json:"policy"`
	// Kill is the best-effort eviction policy: "newest" or "largest".
	Kill string `json:"kill"`
}

// Topology is the broker fleet configuration.
type Topology struct {
	// GridPolicy is the routing policy name (registry grid catalog).
	// Default "centralized".
	GridPolicy string `json:"grid_policy"`
	// Dilation is the shared fleet clock: simulated seconds per wall
	// second, 0 = free-running. Every engine runs the same dilation off
	// one anchor so the fleet's virtual clocks advance in lockstep.
	Dilation float64 `json:"dilation"`
	// Seed drives the weighted-random router.
	Seed uint64 `json:"seed"`
	// Threshold and MaxMove tune the decentralized exchange.
	Threshold float64 `json:"threshold"`
	MaxMove   int     `json:"max_move"`
	// TickMS is the broker's redistribution period in wall milliseconds
	// (campaign fills, kill requeues, load exchange). Default 20.
	TickMS int `json:"tick_ms"`
	// Defaults fills unset per-cluster fields (its own zero fields fall
	// back to m=64, speed=1, policy="easy", kill="newest").
	Defaults ClusterSpec `json:"defaults"`
	// Clusters is the fleet. At least one entry.
	Clusters []ClusterSpec `json:"clusters"`
	// Partitions cut clusters (fleet indices) off the broker during
	// [start, end) windows of virtual time: no placements, grants or
	// migrations reach them while the window is open. Work already on a
	// partitioned cluster keeps running; killed campaign tasks still
	// drift back to the stock (the partition cuts scheduling traffic,
	// not the accounting channel).
	Partitions []scenario.PartitionWindow `json:"partitions,omitempty"`
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (Topology, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("gridservice: %w", err)
	}
	var t Topology
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("gridservice: topology %s: %w", path, err)
	}
	t = t.fill()
	if err := t.Validate(); err != nil {
		return Topology{}, fmt.Errorf("gridservice: topology %s: %w", path, err)
	}
	return t, nil
}

// fill applies the defaults chain: topology defaults, then built-ins.
func (t Topology) fill() Topology {
	if t.GridPolicy == "" {
		t.GridPolicy = "centralized"
	}
	if t.TickMS <= 0 {
		t.TickMS = 20
	}
	d := t.Defaults
	if d.M == 0 {
		d.M = 64
	}
	if d.Speed == 0 {
		d.Speed = 1
	}
	if d.Policy == "" {
		d.Policy = "easy"
	}
	if d.Kill == "" {
		d.Kill = "newest"
	}
	t.Defaults = d
	clusters := make([]ClusterSpec, len(t.Clusters))
	for i, c := range t.Clusters {
		if c.Name == "" {
			c.Name = fmt.Sprintf("c%d", i)
		}
		if c.M == 0 {
			c.M = d.M
		}
		if c.Speed == 0 {
			c.Speed = d.Speed
		}
		if c.Policy == "" {
			c.Policy = d.Policy
		}
		if c.Kill == "" {
			c.Kill = d.Kill
		}
		clusters[i] = c
	}
	t.Clusters = clusters
	return t
}

// Validate checks the filled topology.
func (t Topology) Validate() error {
	if len(t.Clusters) == 0 {
		return fmt.Errorf("no clusters")
	}
	if _, err := registry.GetGrid(t.GridPolicy); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, c := range t.Clusters {
		if seen[c.Name] {
			return fmt.Errorf("duplicate cluster name %q", c.Name)
		}
		seen[c.Name] = true
		if c.M <= 0 {
			return fmt.Errorf("cluster %s: %d processors", c.Name, c.M)
		}
		if c.Speed <= 0 {
			return fmt.Errorf("cluster %s: speed %v", c.Name, c.Speed)
		}
		entry, err := registry.Get(c.Policy)
		if err != nil {
			return fmt.Errorf("cluster %s: %w", c.Name, err)
		}
		if !entry.Caps.Online {
			return fmt.Errorf("cluster %s: policy %q is offline-only", c.Name, c.Policy)
		}
		if _, err := killPolicy(c.Kill); err != nil {
			return fmt.Errorf("cluster %s: %w", c.Name, err)
		}
	}
	if t.Dilation < 0 {
		return fmt.Errorf("negative dilation %v", t.Dilation)
	}
	for i, p := range t.Partitions {
		if p.Start < 0 || p.End <= p.Start {
			return fmt.Errorf("partition %d window [%v, %v) invalid", i, p.Start, p.End)
		}
		if len(p.Clusters) == 0 {
			return fmt.Errorf("partition %d cuts no clusters", i)
		}
		for _, c := range p.Clusters {
			if c < 0 || c >= len(t.Clusters) {
				return fmt.Errorf("partition %d lists cluster %d of a %d-cluster fleet", i, c, len(t.Clusters))
			}
		}
	}
	return nil
}

// killPolicy parses the kill-policy name shared with the gridd flags.
func killPolicy(name string) (cluster.KillPolicy, error) {
	switch name {
	case "newest", "":
		return cluster.KillNewest, nil
	case "largest":
		return cluster.KillLargestRemaining, nil
	default:
		return 0, fmt.Errorf("unknown kill policy %q (newest|largest)", name)
	}
}
