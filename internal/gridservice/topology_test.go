package gridservice

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTopo(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTopologyDefaults(t *testing.T) {
	topo, err := LoadTopology(writeTopo(t, `{
		"grid_policy": "centralized",
		"defaults": {"m": 32, "policy": "fcfs"},
		"clusters": [
			{"name": "fast", "m": 128, "speed": 2, "policy": "easy"},
			{},
			{"kill": "largest"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Clusters) != 3 {
		t.Fatalf("%d clusters", len(topo.Clusters))
	}
	c0, c1, c2 := topo.Clusters[0], topo.Clusters[1], topo.Clusters[2]
	if c0.Name != "fast" || c0.M != 128 || c0.Speed != 2 || c0.Policy != "easy" || c0.Kill != "newest" {
		t.Fatalf("cluster 0 %+v", c0)
	}
	if c1.Name != "c1" || c1.M != 32 || c1.Speed != 1 || c1.Policy != "fcfs" {
		t.Fatalf("cluster 1 %+v", c1)
	}
	if c2.Kill != "largest" || c2.M != 32 {
		t.Fatalf("cluster 2 %+v", c2)
	}
	if topo.TickMS != 20 {
		t.Fatalf("tick default %d", topo.TickMS)
	}
}

func TestLoadTopologyRejects(t *testing.T) {
	cases := map[string]string{
		"no clusters":       `{"clusters": []}`,
		"unknown grid":      `{"grid_policy": "nope", "clusters": [{}]}`,
		"unknown policy":    `{"clusters": [{"policy": "nope"}]}`,
		"offline policy":    `{"clusters": [{"policy": "mrt"}]}`,
		"bad kill":          `{"clusters": [{"kill": "oldest"}]}`,
		"duplicate names":   `{"clusters": [{"name": "a"}, {"name": "a"}]}`,
		"negative m":        `{"clusters": [{"m": -4}]}`,
		"negative speed":    `{"clusters": [{"speed": -1}]}`,
		"unknown field":     `{"clusterz": [{}]}`,
		"negative dilation": `{"dilation": -1, "clusters": [{}]}`,
	}
	for name, body := range cases {
		if _, err := LoadTopology(writeTopo(t, body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := LoadTopology("/does/not/exist.json"); err == nil ||
		!strings.Contains(err.Error(), "gridservice") {
		t.Errorf("missing file: %v", err)
	}
}

func TestNewBrokerRejectsBadTopology(t *testing.T) {
	if _, err := NewBroker(Topology{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := NewBroker(Topology{GridPolicy: "nope", Clusters: []ClusterSpec{{}}}); err == nil {
		t.Fatal("unknown grid policy accepted")
	}
}
