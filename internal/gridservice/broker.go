// Package gridservice is the federated grid broker: the online,
// multi-cluster counterpart of the offline grid simulations in
// internal/grid. A Broker owns one service.Engine per cluster — each
// with its own DES loop goroutine — on a shared paced virtual clock, and
// routes work across the fleet with a pluggable grid policy
// (grid.Router via the registry catalog):
//
//   - local jobs are placed on a cluster at submission time
//     (round-robin home clusters, least-loaded, capacity-weighted
//     random, or pinned via JobSpec.Cluster);
//   - campaigns (CiGri multi-parametric bags) enter a central stock and
//     fan out across the fleet as best-effort tasks that fill scheduling
//     holes, are killed whenever local work needs their processors, and
//     drift back through the stock to whichever cluster has room next;
//   - the decentralized policy additionally migrates queued jobs from
//     overloaded to underloaded clusters each broker tick.
//
// Concurrency layout: every engine mutation goes through that engine's
// mailbox; broker bookkeeping (stock, campaigns, job→cluster map) lives
// under Broker.mu; engine→broker callbacks (best-effort kills and
// completions, which fire on engine loop goroutines) only append to a
// pending list under the narrower feedMu, so an engine loop never blocks
// on broker work and the broker can hold mu while talking to engines
// without deadlock. Load polling is lock-free via cluster.LoadSnapshot.
package gridservice

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/workload"
)

// ErrNoCluster rejects a job no cluster of the fleet can run.
var ErrNoCluster = errors.New("gridservice: no cluster fits the job")

// ErrPartitioned rejects a pinned submission to a cluster that is cut
// off by an open partition window.
var ErrPartitioned = errors.New("gridservice: cluster is partitioned from the broker")

// JobStatus is a service.JobStatus plus the cluster that runs the job.
type JobStatus struct {
	service.JobStatus
	Cluster string `json:"cluster"`
}

// CampaignSpec is the POST /campaigns payload: a bag of Tasks identical
// independent runs of RunTime reference-speed seconds each.
type CampaignSpec struct {
	Name    string  `json:"name,omitempty"`
	Tasks   int     `json:"tasks"`
	RunTime float64 `json:"run_time"`
}

// Campaign is the externally visible state of one campaign.
type Campaign struct {
	ID        int     `json:"id"`
	Name      string  `json:"name,omitempty"`
	Tasks     int     `json:"tasks"`
	RunTime   float64 `json:"run_time"`
	Completed int     `json:"completed"`
	// Killed counts kill events (one task may die several times; every
	// kill sends it back to the central stock).
	Killed int `json:"killed"`
	// PerCluster is the completed-task count per cluster, fleet order.
	PerCluster []int `json:"per_cluster"`
	Done       bool  `json:"done"`
}

// FleetTotals aggregates the whole grid.
type FleetTotals struct {
	Clusters      int             `json:"clusters"`
	Procs         int             `json:"procs"`
	Submitted     int             `json:"submitted"`
	Waiting       int             `json:"waiting"`
	Running       int             `json:"running"`
	Completed     int             `json:"completed"`
	Migrations    int             `json:"migrations"`
	Campaigns     int             `json:"campaigns"`
	CampaignsDone int             `json:"campaigns_done"`
	Stock         int             `json:"stock"`
	BestEffort    cluster.BEStats `json:"best_effort"`
	// Faults sums the fleet's fault-injection counters (crashes,
	// repairs, requeued local jobs, lost work, down proc-seconds).
	Faults        metrics.FaultStats `json:"faults"`
	VirtualNow    float64            `json:"virtual_now"`
	UptimeSeconds float64            `json:"uptime_seconds"`
}

// ClusterStats is one cluster's stats under its fleet name.
type ClusterStats struct {
	Name  string        `json:"name"`
	Stats service.Stats `json:"stats"`
}

// FleetStats is the GET /stats payload of a broker.
type FleetStats struct {
	GridPolicy string         `json:"grid_policy"`
	Dilation   float64        `json:"dilation"`
	Fleet      FleetTotals    `json:"fleet"`
	Clusters   []ClusterStats `json:"per_cluster"`
	// Runs summarizes the scenario run store (filled by the HTTP
	// layer from the same store the /v1/runs endpoints serve).
	Runs *api.RunsSummary `json:"runs,omitempty"`
}

type doneEvent struct {
	task    cluster.BETask
	cluster int
}

// Broker federates N engines behind one submission API.
type Broker struct {
	topo    Topology
	engines []*service.Engine
	names   []string
	router  grid.Router

	// mu guards the broker bookkeeping below. It may be held across
	// engine mailbox calls (engine loops never take it).
	mu         sync.Mutex
	stock      []cluster.BETask
	campaigns  map[int]*Campaign
	nextCamp   int
	nextJobID  int
	jobHome    map[int]int
	submitted  int
	migrations int

	// feedMu guards the engine→broker event lists. Engine loop callbacks
	// take only this lock, and the broker never holds it while calling
	// into an engine.
	feedMu        sync.Mutex
	pendingKilled []cluster.BETask
	pendingDone   []doneEvent

	started  time.Time
	kick     chan struct{}
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewBroker wires the fleet from a filled topology (see LoadTopology).
func NewBroker(topo Topology) (*Broker, error) {
	topo = topo.fill()
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	gentry, err := registry.GetGrid(topo.GridPolicy)
	if err != nil {
		return nil, err
	}
	b := &Broker{
		topo: topo,
		router: gentry.New(grid.RouterOptions{
			Seed: topo.Seed, Threshold: topo.Threshold, MaxMove: topo.MaxMove,
		}),
		campaigns: make(map[int]*Campaign),
		jobHome:   make(map[int]int),
		kick:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	anchor := time.Now()
	for i, spec := range topo.Clusters {
		kp, err := killPolicy(spec.Kill)
		if err != nil {
			return nil, err
		}
		ci := i
		eng, err := service.New(service.Config{
			M: spec.M, Speed: spec.Speed, Policy: spec.Policy, Kill: kp,
			Dilation: topo.Dilation, Label: spec.Name, Anchor: anchor,
			OnBEKilled: func(t cluster.BETask) { b.onKilled(t) },
			OnBEDone:   func(t cluster.BETask) { b.onDone(ci, t) },
		})
		if err != nil {
			return nil, fmt.Errorf("gridservice: cluster %s: %w", spec.Name, err)
		}
		b.engines = append(b.engines, eng)
		b.names = append(b.names, spec.Name)
	}
	return b, nil
}

// Start launches every engine and the broker tick loop.
func (b *Broker) Start() {
	b.started = time.Now()
	for _, e := range b.engines {
		e.Start()
	}
	go b.loop()
}

// Stop terminates the tick loop and every engine without draining.
func (b *Broker) Stop() {
	b.stopOnce.Do(func() { close(b.quit) })
	<-b.done
	for _, e := range b.engines {
		e.Stop()
	}
}

// Topology returns the filled fleet configuration.
func (b *Broker) Topology() Topology { return b.topo }

// Names returns the cluster names in fleet order.
func (b *Broker) Names() []string { return append([]string(nil), b.names...) }

// onKilled receives a killed best-effort task (engine loop goroutine):
// back to the central stock at the next tick.
func (b *Broker) onKilled(t cluster.BETask) {
	b.feedMu.Lock()
	b.pendingKilled = append(b.pendingKilled, t)
	b.feedMu.Unlock()
}

// onDone receives a completed best-effort task (engine loop goroutine).
func (b *Broker) onDone(ci int, t cluster.BETask) {
	b.feedMu.Lock()
	b.pendingDone = append(b.pendingDone, doneEvent{task: t, cluster: ci})
	b.feedMu.Unlock()
}

// loop ticks the redistribution machinery on wall time until Stop.
func (b *Broker) loop() {
	defer close(b.done)
	ticker := time.NewTicker(time.Duration(b.topo.TickMS) * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-b.quit:
			return
		case <-b.kick:
		case <-ticker.C:
		}
		b.tick()
	}
}

// kickNow wakes the tick loop without waiting for the ticker.
func (b *Broker) kickNow() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// loads polls every cluster's lock-free load snapshot. Clusters behind
// an open partition window (checked against the fleet's virtual clock)
// are masked to a zero LoadInfo so the router skips them.
func (b *Broker) loads(now float64) []cluster.LoadInfo {
	out := make([]cluster.LoadInfo, len(b.engines))
	for i, e := range b.engines {
		if b.partitioned(i, now) {
			continue
		}
		out[i] = e.Load()
	}
	return out
}

// virtualNow returns the fleet's virtual clock: the maximum engine
// clock (they advance in lockstep under a shared pacer; free-running
// fleets take the frontier). 0 when no partitions are configured — the
// windows are the only consumer, so the healthy fleet never pays the
// mailbox round-trips.
func (b *Broker) virtualNow() float64 {
	if len(b.topo.Partitions) == 0 {
		return 0
	}
	var now float64
	for _, e := range b.engines {
		if v, err := e.VirtualNow(); err == nil && v > now {
			now = v
		}
	}
	return now
}

// partitioned reports whether cluster i is cut off at virtual time now.
func (b *Broker) partitioned(i int, now float64) bool {
	for _, w := range b.topo.Partitions {
		if now < w.Start || now >= w.End {
			continue
		}
		for _, c := range w.Clusters {
			if c == i {
				return true
			}
		}
	}
	return false
}

// drainFeeds folds the pending engine events into broker state (caller
// holds mu).
func (b *Broker) drainFeeds() {
	b.feedMu.Lock()
	killed := b.pendingKilled
	done := b.pendingDone
	b.pendingKilled, b.pendingDone = nil, nil
	b.feedMu.Unlock()
	for _, t := range killed {
		if c := b.campaigns[t.BagID]; c != nil {
			c.Killed++
		}
		b.stock = append(b.stock, t)
	}
	for _, ev := range done {
		if c := b.campaigns[ev.task.BagID]; c != nil {
			c.Completed++
			c.PerCluster[ev.cluster]++
			if c.Completed >= c.Tasks {
				c.Done = true
			}
		}
	}
}

// tick is one redistribution round: fold kill/done events, grant stock
// tasks to clusters with room, and apply exchange migrations.
func (b *Broker) tick() {
	now := b.virtualNow()
	b.mu.Lock()
	b.drainFeeds()
	loads := b.loads(now)
	var batches [][]cluster.BETask
	if len(b.stock) > 0 {
		grants := b.router.Grants(loads, len(b.stock))
		batches = make([][]cluster.BETask, len(b.engines))
		for i, n := range grants {
			// Partitioned clusters get nothing even when the router's
			// remainder arithmetic grants them tasks over their masked
			// loads; the tasks stay central until a later tick.
			if n <= 0 || b.partitioned(i, now) {
				continue
			}
			if n > len(b.stock) {
				n = len(b.stock)
			}
			batches[i] = append([]cluster.BETask(nil), b.stock[:n]...)
			b.stock = b.stock[n:]
		}
	}
	moves := b.router.Moves(loads)
	b.mu.Unlock()

	for i, batch := range batches {
		if len(batch) > 0 {
			_ = b.engines[i].SubmitBestEffort(batch...)
		}
	}
	for _, mv := range moves {
		if b.partitioned(mv.Src, now) || b.partitioned(mv.Dst, now) {
			continue
		}
		b.applyMove(mv)
	}
}

// applyMove executes one queued-job migration plan entry: steal up to N
// jobs from the source engine and re-inject the ones that fit the
// destination (misfits go straight back to the source). The whole
// steal→re-place sequence runs under mu so a concurrent Job lookup never
// observes the in-between state where a live job is tracked by no engine
// (engine loops never take mu, so holding it across mailbox calls is
// deadlock-free).
func (b *Broker) applyMove(mv grid.Move) {
	if mv.Src == mv.Dst || mv.Src < 0 || mv.Dst < 0 ||
		mv.Src >= len(b.engines) || mv.Dst >= len(b.engines) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	stolen, err := b.engines[mv.Src].StealQueued(mv.N)
	if err != nil || len(stolen) == 0 {
		return
	}
	dstM := b.engines[mv.Dst].M()
	var fit, misfit []*workload.Job
	for _, j := range stolen {
		if j.MinProcs <= dstM {
			fit = append(fit, j)
		} else {
			misfit = append(misfit, j)
		}
	}
	if len(misfit) > 0 {
		_ = b.engines[mv.Src].SubmitJobs(misfit)
	}
	if len(fit) == 0 {
		return
	}
	if err := b.engines[mv.Dst].SubmitJobs(fit); err != nil {
		// Destination refused (e.g. a racing drain): put them back.
		_ = b.engines[mv.Src].SubmitJobs(fit)
		return
	}
	for _, j := range fit {
		b.jobHome[j.ID] = mv.Dst
	}
	b.migrations += len(fit)
}

// Submit routes one job described by spec across the fleet and submits
// it. The assigned global job ID is unique across all clusters.
func (b *Broker) Submit(spec service.JobSpec) (JobStatus, error) {
	b.mu.Lock()
	id := b.nextJobID
	j, err := spec.Job(id)
	if err != nil {
		b.mu.Unlock()
		return JobStatus{}, err
	}
	idx := -1
	now := b.virtualNow()
	if spec.Cluster != "" {
		for i, n := range b.names {
			if n == spec.Cluster {
				idx = i
				break
			}
		}
		if idx < 0 {
			b.mu.Unlock()
			return JobStatus{}, fmt.Errorf("gridservice: unknown cluster %q", spec.Cluster)
		}
		if b.partitioned(idx, now) {
			b.mu.Unlock()
			return JobStatus{}, fmt.Errorf("gridservice: cluster %q: %w", spec.Cluster, ErrPartitioned)
		}
		if j.MinProcs > b.engines[idx].M() {
			b.mu.Unlock()
			return JobStatus{}, fmt.Errorf("gridservice: job needs %d > %d procs on cluster %s",
				j.MinProcs, b.engines[idx].M(), spec.Cluster)
		}
	} else {
		idx = b.router.Route(j.MinProcs, b.loads(now))
		if idx < 0 {
			b.mu.Unlock()
			return JobStatus{}, ErrNoCluster
		}
	}
	b.nextJobID++
	b.jobHome[id] = idx
	b.submitted++
	eng := b.engines[idx]
	b.mu.Unlock()

	if err := eng.SubmitJobs([]*workload.Job{j}); err != nil {
		b.mu.Lock()
		delete(b.jobHome, id)
		b.submitted--
		b.mu.Unlock()
		return JobStatus{}, err
	}
	return JobStatus{
		JobStatus: service.JobStatus{
			ID: id, Name: j.Name, Class: j.Class,
			State: service.StateWaiting, Release: j.Release,
		},
		Cluster: b.names[idx],
	}, nil
}

// SubmitBatch routes and submits pre-built jobs (trace replay) with one
// atomic batch per engine. Routing runs against a fleet-start load model
// evolved only by the batch itself, never against live wall-clock state —
// this is what makes a broker replay deterministic and comparable to the
// offline grid runs (the same stream routes identically on every run).
// Job IDs must be unique across the fleet's history.
func (b *Broker) SubmitBatch(jobs []*workload.Job) error {
	b.mu.Lock()
	model := make([]cluster.LoadInfo, len(b.engines))
	for i, spec := range b.topo.Clusters {
		model[i] = cluster.LoadInfo{M: spec.M, Speed: spec.Speed, Free: spec.M}
	}
	perEngine := make([][]*workload.Job, len(b.engines))
	routed := make(map[int]int, len(jobs))
	for _, j := range jobs {
		if _, dup := b.jobHome[j.ID]; dup {
			b.mu.Unlock()
			return fmt.Errorf("gridservice: duplicate job ID %d", j.ID)
		}
		if _, dup := routed[j.ID]; dup {
			b.mu.Unlock()
			return fmt.Errorf("gridservice: duplicate job ID %d in batch", j.ID)
		}
		idx := b.router.Route(j.MinProcs, model)
		if idx < 0 {
			b.mu.Unlock()
			return fmt.Errorf("gridservice: job %d: %w", j.ID, ErrNoCluster)
		}
		perEngine[idx] = append(perEngine[idx], j)
		routed[j.ID] = idx
		w, _ := j.MinWork(model[idx].M)
		model[idx].Queued++
		model[idx].QueuedWork += w
	}
	for id, idx := range routed {
		b.jobHome[id] = idx
		if id >= b.nextJobID {
			b.nextJobID = id + 1
		}
	}
	b.submitted += len(jobs)
	b.mu.Unlock()

	var firstErr error
	for i, batch := range perEngine {
		if len(batch) == 0 {
			continue
		}
		if err := b.engines[i].SubmitJobs(batch); err != nil {
			// SubmitJobs is atomic per engine: a refusal (e.g. drained)
			// means none of this engine's share was accepted, so undo its
			// bookkeeping — a retry must not see phantom submissions or
			// spurious duplicate-ID errors.
			b.mu.Lock()
			for _, j := range batch {
				delete(b.jobHome, j.ID)
			}
			b.submitted -= len(batch)
			b.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("gridservice: cluster %s: %w", b.names[i], err)
			}
		}
	}
	return firstErr
}

// SubmitCampaign accepts a bag-of-tasks campaign into the central stock
// and wakes the tick loop so the fan-out starts immediately.
func (b *Broker) SubmitCampaign(spec CampaignSpec) (Campaign, error) {
	if spec.Tasks <= 0 {
		return Campaign{}, fmt.Errorf("gridservice: campaign needs tasks > 0")
	}
	if spec.RunTime <= 0 {
		return Campaign{}, fmt.Errorf("gridservice: campaign needs run_time > 0")
	}
	b.mu.Lock()
	id := b.nextCamp
	b.nextCamp++
	c := &Campaign{
		ID: id, Name: spec.Name, Tasks: spec.Tasks, RunTime: spec.RunTime,
		PerCluster: make([]int, len(b.engines)),
	}
	b.campaigns[id] = c
	for i := 0; i < spec.Tasks; i++ {
		b.stock = append(b.stock, cluster.BETask{BagID: id, Index: i, Duration: spec.RunTime})
	}
	snap := *c
	snap.PerCluster = append([]int(nil), c.PerCluster...)
	b.mu.Unlock()
	b.kickNow()
	return snap, nil
}

// CampaignStatus returns one campaign (fresh as of the last tick).
func (b *Broker) CampaignStatus(id int) (Campaign, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drainFeeds()
	c, ok := b.campaigns[id]
	if !ok {
		return Campaign{}, false
	}
	snap := *c
	snap.PerCluster = append([]int(nil), c.PerCluster...)
	return snap, true
}

// Campaigns lists every campaign in ID order.
func (b *Broker) Campaigns() []Campaign {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drainFeeds()
	out := make([]Campaign, 0, len(b.campaigns))
	for id := 0; id < b.nextCamp; id++ {
		if c, ok := b.campaigns[id]; ok {
			snap := *c
			snap.PerCluster = append([]int(nil), c.PerCluster...)
			out = append(out, snap)
		}
	}
	return out
}

// Job resolves a global job ID to its status and cluster. A miss on the
// recorded home cluster is retried under mu: that serializes with any
// in-flight migration (applyMove holds mu from steal to re-place), so an
// accepted job is never reported unknown just because it was mid-move.
func (b *Broker) Job(id int) (JobStatus, bool, error) {
	b.mu.Lock()
	idx, ok := b.jobHome[id]
	b.mu.Unlock()
	if !ok {
		return JobStatus{}, false, nil
	}
	st, found, err := b.engines[idx].Job(id)
	if err != nil {
		return JobStatus{}, false, err
	}
	if !found {
		b.mu.Lock()
		idx, ok = b.jobHome[id]
		if ok {
			st, found, err = b.engines[idx].Job(id)
		}
		b.mu.Unlock()
		if err != nil || !found {
			return JobStatus{}, found, err
		}
	}
	return JobStatus{JobStatus: st, Cluster: b.names[idx]}, true, nil
}

// Engine exposes cluster i's engine (determinism tests compare each
// shard against its offline twin).
func (b *Broker) Engine(i int) *service.Engine { return b.engines[i] }

// Stats aggregates per-cluster and fleet-wide statistics.
func (b *Broker) Stats() (FleetStats, error) {
	per := make([]ClusterStats, len(b.engines))
	for i, e := range b.engines {
		st, err := e.Stats()
		if err != nil {
			return FleetStats{}, err
		}
		per[i] = ClusterStats{Name: b.names[i], Stats: st}
	}
	b.mu.Lock()
	b.drainFeeds()
	fleet := FleetTotals{
		Clusters:      len(b.engines),
		Submitted:     b.submitted,
		Migrations:    b.migrations,
		Stock:         len(b.stock),
		Campaigns:     len(b.campaigns),
		UptimeSeconds: time.Since(b.started).Seconds(),
	}
	for _, c := range b.campaigns {
		if c.Done {
			fleet.CampaignsDone++
		}
	}
	b.mu.Unlock()
	for _, p := range per {
		fleet.Procs += p.Stats.M
		fleet.Waiting += p.Stats.Waiting
		fleet.Running += p.Stats.Running
		fleet.Completed += p.Stats.Completed
		fleet.BestEffort.Completed += p.Stats.BestEffort.Completed
		fleet.BestEffort.Killed += p.Stats.BestEffort.Killed
		fleet.BestEffort.Redistributed += p.Stats.BestEffort.Redistributed
		fleet.BestEffort.DoneWork += p.Stats.BestEffort.DoneWork
		fleet.BestEffort.WastedWork += p.Stats.BestEffort.WastedWork
		fleet.Faults.Crashes += p.Stats.Report.Faults.Crashes
		fleet.Faults.Repairs += p.Stats.Report.Faults.Repairs
		fleet.Faults.Requeues += p.Stats.Report.Faults.Requeues
		fleet.Faults.LostWork += p.Stats.Report.Faults.LostWork
		fleet.Faults.DownProcSeconds += p.Stats.Report.Faults.DownProcSeconds
		if p.Stats.VirtualNow > fleet.VirtualNow {
			fleet.VirtualNow = p.Stats.VirtualNow
		}
	}
	return FleetStats{
		GridPolicy: b.topo.GridPolicy,
		Dilation:   b.topo.Dilation,
		Fleet:      fleet,
		Clusters:   per,
	}, nil
}

// Drain gracefully shuts the fleet down: stop the tick loop, refuse new
// local work and fast-forward every engine, then keep redistributing the
// central stock (killed campaign tasks included) until every campaign
// task has completed or the context expires.
func (b *Broker) Drain(ctx context.Context) (FleetStats, error) {
	b.stopOnce.Do(func() { close(b.quit) })
	<-b.done
	for _, e := range b.engines {
		if _, err := e.Drain(ctx); err != nil {
			return FleetStats{}, err
		}
	}
	// Post-drain the engines free-run, so the leftover campaign work is
	// a deterministic redistribution loop, not a wall-clock wait.
	for {
		if err := ctx.Err(); err != nil {
			return FleetStats{}, err
		}
		b.mu.Lock()
		b.drainFeeds()
		stock := len(b.stock)
		b.mu.Unlock()
		busy := 0
		for _, e := range b.engines {
			ld := e.Load()
			busy += ld.BEQueued + ld.BEActive
		}
		if stock == 0 && busy == 0 {
			// One final fold: completions may have landed between the
			// stock check and the engine poll.
			b.mu.Lock()
			b.drainFeeds()
			stuck := len(b.stock)
			b.mu.Unlock()
			if stuck == 0 {
				break
			}
			continue
		}
		if stock > 0 {
			b.tick()
		}
		for _, e := range b.engines {
			if err := e.Sync(); err != nil {
				return FleetStats{}, err
			}
		}
	}
	return b.Stats()
}
