package registry

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/workload"
)

func TestCatalogConsistency(t *testing.T) {
	if len(All()) < 8 {
		t.Fatalf("catalog unexpectedly small: %v", Names())
	}
	for _, e := range All() {
		if e.Name == "" || e.Desc == "" {
			t.Fatalf("entry %+v missing name/desc", e)
		}
		if e.Caps.Online != (e.NewPolicy != nil) {
			t.Fatalf("%s: Online flag %v but NewPolicy nil=%v", e.Name, e.Caps.Online, e.NewPolicy == nil)
		}
		if e.Caps.Offline != (e.Offline != nil) {
			t.Fatalf("%s: Offline flag %v but Offline nil=%v", e.Name, e.Caps.Offline, e.Offline == nil)
		}
		if !e.Caps.Online && !e.Caps.Offline {
			t.Fatalf("%s: supports neither mode", e.Name)
		}
		if e.Caps.Online {
			p := e.NewPolicy()
			if p.Name() == "" {
				t.Fatalf("%s: constructed policy has empty name", e.Name)
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("definitely-not-a-policy"); err == nil {
		t.Fatal("unknown policy resolved")
	}
	e, err := Get("easy")
	if err != nil || e.Name != "easy" {
		t.Fatalf("Get(easy) = %v, %v", e, err)
	}
}

func TestOfflineEntriesSchedule(t *testing.T) {
	jobs := workload.Parallel(workload.GenConfig{N: 30, M: 16, Seed: 3})
	for _, e := range All() {
		if !e.Caps.Offline {
			continue
		}
		s, err := e.Offline(jobs, 16)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if len(s.Allocs) != len(jobs) {
			t.Fatalf("%s: scheduled %d of %d jobs", e.Name, len(s.Allocs), len(jobs))
		}
	}
}

func TestWriteCatalog(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("catalog output missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "online") || !strings.Contains(out, "offline") {
		t.Fatalf("catalog output missing capability flags:\n%s", out)
	}
}

func TestGridCatalog(t *testing.T) {
	if len(Grids()) < 4 {
		t.Fatalf("grid catalog unexpectedly small: %v", GridNames())
	}
	for _, e := range Grids() {
		if e.Name == "" || e.Desc == "" || e.New == nil {
			t.Fatalf("grid entry %+v incomplete", e)
		}
		r := e.New(grid.RouterOptions{Seed: 1})
		if r.Name() != e.Name {
			t.Fatalf("grid entry %q constructs router %q", e.Name, r.Name())
		}
	}
	if _, err := GetGrid("nope"); err == nil {
		t.Fatal("unknown grid policy resolved")
	}
	e, err := GetGrid("centralized")
	if err != nil || e.Name != "centralized" {
		t.Fatalf("GetGrid(centralized) = %v, %v", e, err)
	}
	var buf bytes.Buffer
	if err := WriteGridCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range GridNames() {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("grid catalog output missing %s:\n%s", name, buf.String())
		}
	}
}

func TestOnlineSubset(t *testing.T) {
	online := Online()
	if len(online) == 0 {
		t.Fatal("no online policies")
	}
	for _, e := range online {
		if !e.Caps.Online {
			t.Fatalf("%s in Online() without the flag", e.Name)
		}
	}
}

// TestGridCatalogOrderingStable: the grid catalog (and its rendering)
// is sorted by name and stable across calls — consumers like the T15
// scenario sweep and the usage text rely on deterministic order.
func TestGridCatalogOrderingStable(t *testing.T) {
	names := GridNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("GridNames not sorted: %v", names)
	}
	for _, want := range []string{"centralized", "decentralized", "least-loaded", "weighted-random"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("grid catalog missing %q (have %v)", want, names)
		}
	}
	entries := Grids()
	for i, e := range entries {
		if e.Name != names[i] {
			t.Fatalf("Grids()[%d] = %q, want %q (order must match GridNames)", i, e.Name, names[i])
		}
	}
	var a, b bytes.Buffer
	if err := WriteGridCatalog(&a); err != nil {
		t.Fatal(err)
	}
	if err := WriteGridCatalog(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteGridCatalog not byte-stable across calls")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != len(entries) {
		t.Fatalf("%d catalog lines for %d entries", len(lines), len(entries))
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, entries[i].Name) {
			t.Fatalf("line %d %q does not lead with %q", i, line, entries[i].Name)
		}
		wantKind := "routing"
		if entries[i].Exchanges {
			wantKind = "routing+exchange"
		}
		if !strings.Contains(line, wantKind) {
			t.Fatalf("line %d %q missing kind %q", i, line, wantKind)
		}
	}
}

// TestWriteCatalogOrderingStable mirrors the grid test for the queue
// policy catalog.
func TestWriteCatalogOrderingStable(t *testing.T) {
	if !sort.StringsAreSorted(Names()) {
		t.Fatalf("Names not sorted: %v", Names())
	}
	var a, b bytes.Buffer
	if err := WriteCatalog(&a); err != nil {
		t.Fatal(err)
	}
	if err := WriteCatalog(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteCatalog not byte-stable across calls")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	for i, e := range All() {
		if !strings.HasPrefix(lines[i], e.Name) {
			t.Fatalf("line %d %q does not lead with %q", i, lines[i], e.Name)
		}
	}
}
