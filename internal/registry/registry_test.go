package registry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/workload"
)

func TestCatalogConsistency(t *testing.T) {
	if len(All()) < 8 {
		t.Fatalf("catalog unexpectedly small: %v", Names())
	}
	for _, e := range All() {
		if e.Name == "" || e.Desc == "" {
			t.Fatalf("entry %+v missing name/desc", e)
		}
		if e.Caps.Online != (e.NewPolicy != nil) {
			t.Fatalf("%s: Online flag %v but NewPolicy nil=%v", e.Name, e.Caps.Online, e.NewPolicy == nil)
		}
		if e.Caps.Offline != (e.Offline != nil) {
			t.Fatalf("%s: Offline flag %v but Offline nil=%v", e.Name, e.Caps.Offline, e.Offline == nil)
		}
		if !e.Caps.Online && !e.Caps.Offline {
			t.Fatalf("%s: supports neither mode", e.Name)
		}
		if e.Caps.Online {
			p := e.NewPolicy()
			if p.Name() == "" {
				t.Fatalf("%s: constructed policy has empty name", e.Name)
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("definitely-not-a-policy"); err == nil {
		t.Fatal("unknown policy resolved")
	}
	e, err := Get("easy")
	if err != nil || e.Name != "easy" {
		t.Fatalf("Get(easy) = %v, %v", e, err)
	}
}

func TestOfflineEntriesSchedule(t *testing.T) {
	jobs := workload.Parallel(workload.GenConfig{N: 30, M: 16, Seed: 3})
	for _, e := range All() {
		if !e.Caps.Offline {
			continue
		}
		s, err := e.Offline(jobs, 16)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if len(s.Allocs) != len(jobs) {
			t.Fatalf("%s: scheduled %d of %d jobs", e.Name, len(s.Allocs), len(jobs))
		}
	}
}

func TestWriteCatalog(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("catalog output missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "online") || !strings.Contains(out, "offline") {
		t.Fatalf("catalog output missing capability flags:\n%s", out)
	}
}

func TestGridCatalog(t *testing.T) {
	if len(Grids()) < 4 {
		t.Fatalf("grid catalog unexpectedly small: %v", GridNames())
	}
	for _, e := range Grids() {
		if e.Name == "" || e.Desc == "" || e.New == nil {
			t.Fatalf("grid entry %+v incomplete", e)
		}
		r := e.New(grid.RouterOptions{Seed: 1})
		if r.Name() != e.Name {
			t.Fatalf("grid entry %q constructs router %q", e.Name, r.Name())
		}
	}
	if _, err := GetGrid("nope"); err == nil {
		t.Fatal("unknown grid policy resolved")
	}
	e, err := GetGrid("centralized")
	if err != nil || e.Name != "centralized" {
		t.Fatalf("GetGrid(centralized) = %v, %v", e, err)
	}
	var buf bytes.Buffer
	if err := WriteGridCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range GridNames() {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("grid catalog output missing %s:\n%s", name, buf.String())
		}
	}
}

func TestOnlineSubset(t *testing.T) {
	online := Online()
	if len(online) == 0 {
		t.Fatal("no online policies")
	}
	for _, e := range online {
		if !e.Caps.Online {
			t.Fatalf("%s in Online() without the flag", e.Name)
		}
	}
}
