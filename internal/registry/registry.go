// Package registry is the single policy catalog of the repo: every
// scheduling policy is registered here under its CLI name together with
// its capability flags (online/offline, rigid/moldable, best-effort
// cooperation) and its constructors. cmd/gridsim, cmd/experiments and
// the gridd service all resolve policies through this catalog instead of
// maintaining their own switch statements.
//
// Alongside the per-cluster queue policies the registry also catalogs
// the grid routing policies (internal/grid.Router): the multi-cluster
// designs the gridd broker serves and the offline grid experiments
// sweep.
package registry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/batch"
	"repro/internal/bicriteria"
	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/moldable"
	"repro/internal/rigid"
	"repro/internal/sched"
	"repro/internal/smart"
	"repro/internal/workload"
)

// Caps describes what a policy can do.
type Caps struct {
	// Online: the policy runs inside the event-driven cluster simulator,
	// reacting to arrivals as they happen (NewPolicy is non-nil).
	Online bool
	// Offline: the policy builds a complete schedule from a closed batch
	// of jobs (Offline is non-nil).
	Offline bool
	// Moldable: the policy exploits moldability (chooses processor
	// counts). Policies without it treat every job as rigid at MinProcs.
	Moldable bool
	// BestEffort: when run online, the policy cooperates with the CiGri
	// best-effort backfill layer (grid tasks fill its holes and are
	// evicted on demand).
	BestEffort bool
}

// String renders the flags compactly, e.g. "online,moldable,best-effort".
func (c Caps) String() string {
	var parts []string
	if c.Online {
		parts = append(parts, "online")
	}
	if c.Offline {
		parts = append(parts, "offline")
	}
	if c.Moldable {
		parts = append(parts, "moldable")
	} else {
		parts = append(parts, "rigid")
	}
	if c.BestEffort {
		parts = append(parts, "best-effort")
	}
	return strings.Join(parts, ",")
}

// Entry is one catalogued policy.
type Entry struct {
	Name string
	Desc string
	Caps Caps
	// NewPolicy constructs the online queue policy. Nil when !Caps.Online.
	NewPolicy func() cluster.Policy
	// Offline runs the batch algorithm over a closed job set. Nil when
	// !Caps.Offline.
	Offline func(jobs []*workload.Job, m int) (*sched.Schedule, error)
}

var catalog = map[string]*Entry{
	"fcfs": {
		Name:      "fcfs",
		Desc:      "first-come first-served, no backfilling (strict queue order)",
		Caps:      Caps{Online: true, BestEffort: true},
		NewPolicy: func() cluster.Policy { return cluster.FCFSPolicy{} },
	},
	"easy": {
		Name:      "easy",
		Desc:      "EASY aggressive backfilling (shadow-time reservation for the head)",
		Caps:      Caps{Online: true, BestEffort: true},
		NewPolicy: func() cluster.Policy { return cluster.EASYPolicy{} },
	},
	"greedyfit": {
		Name:      "greedyfit",
		Desc:      "start anything that fits, in queue order (no starvation protection)",
		Caps:      Caps{Online: true, BestEffort: true},
		NewPolicy: func() cluster.Policy { return cluster.GreedyFitPolicy{} },
	},
	"conservative": {
		Name:      "conservative",
		Desc:      "conservative backfilling: every queued job holds a reservation",
		Caps:      Caps{Online: true, Offline: true, BestEffort: true},
		NewPolicy: func() cluster.Policy { return cluster.ConservativePolicy{} },
		Offline: func(jobs []*workload.Job, m int) (*sched.Schedule, error) {
			return rigid.Conservative(jobs, m)
		},
	},
	"ffdh": {
		Name: "ffdh",
		Desc: "first-fit decreasing-height shelf packing (rigid strip baseline)",
		Caps: Caps{Offline: true},
		Offline: func(jobs []*workload.Job, m int) (*sched.Schedule, error) {
			shelves, err := rigid.FFDH(jobs, m)
			if err != nil {
				return nil, err
			}
			return rigid.ShelvesToSchedule(shelves, m), nil
		},
	},
	"mrt": {
		Name: "mrt",
		Desc: "moldable dual-approximation makespan algorithm (§4.1 MRT)",
		Caps: Caps{Offline: true, Moldable: true},
		Offline: func(jobs []*workload.Job, m int) (*sched.Schedule, error) {
			res, err := moldable.MRT(jobs, m, 0.01)
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		},
	},
	"batch": {
		Name: "batch",
		Desc: "online-batch moldable scheduling (doubling batches over release dates)",
		Caps: Caps{Offline: true, Moldable: true},
		Offline: func(jobs []*workload.Job, m int) (*sched.Schedule, error) {
			res, err := batch.OnlineMoldable(jobs, m, 0.01)
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		},
	},
	"bicriteria": {
		Name: "bicriteria",
		Desc: "bi-criteria (Cmax, ΣwC) moldable approximation (§4.2)",
		Caps: Caps{Offline: true, Moldable: true},
		Offline: func(jobs []*workload.Job, m int) (*sched.Schedule, error) {
			res, err := bicriteria.Schedule(jobs, m, bicriteria.Options{})
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		},
	},
	"smart": {
		Name: "smart",
		Desc: "SMART shelf-based weighted-completion approximation",
		Caps: Caps{Offline: true, Moldable: true},
		Offline: func(jobs []*workload.Job, m int) (*sched.Schedule, error) {
			s, _, err := smart.Schedule(jobs, m, smart.FirstFit)
			return s, err
		},
	},
}

// Get resolves a policy by name.
func Get(name string) (*Entry, error) {
	e, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown policy %q (have: %s)", name, strings.Join(Names(), " "))
	}
	return e, nil
}

// Names returns the sorted catalog names.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the entries sorted by name.
func All() []*Entry {
	entries := make([]*Entry, 0, len(catalog))
	for _, n := range Names() {
		entries = append(entries, catalog[n])
	}
	return entries
}

// Online returns the online-capable entries sorted by name.
func Online() []*Entry {
	var out []*Entry
	for _, e := range All() {
		if e.Caps.Online {
			out = append(out, e)
		}
	}
	return out
}

// GridEntry is one catalogued grid routing policy.
type GridEntry struct {
	Name string
	Desc string
	// Exchanges reports whether the policy migrates queued jobs between
	// clusters (the decentralized load-exchange protocol).
	Exchanges bool
	// New constructs a fresh router; routers carry private state
	// (cursors, RNGs) and must not be shared between brokers.
	New func(opt grid.RouterOptions) grid.Router
}

var gridCatalog = map[string]*GridEntry{
	"centralized": {
		Name: "centralized",
		Desc: "CiGri server: jobs stay on their home cluster, campaign tasks top up each cluster's free slots from a central stock",
		New:  grid.NewCentralizedRouter,
	},
	"decentralized": {
		Name:      "decentralized",
		Desc:      "neighbour redistribution: campaigns split by capacity, queued jobs pushed from overloaded to underloaded clusters",
		Exchanges: true,
		New:       grid.NewDecentralizedRouter,
	},
	"least-loaded": {
		Name: "least-loaded",
		Desc: "route every job to the cluster with the smallest normalized queued load",
		New:  grid.NewLeastLoadedRouter,
	},
	"weighted-random": {
		Name: "weighted-random",
		Desc: "route jobs randomly, weighted by cluster capacity (seeded, deterministic)",
		New:  grid.NewWeightedRandomRouter,
	},
}

// GetGrid resolves a grid routing policy by name.
func GetGrid(name string) (*GridEntry, error) {
	e, ok := gridCatalog[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown grid policy %q (have: %s)", name, strings.Join(GridNames(), " "))
	}
	return e, nil
}

// GridNames returns the sorted grid-policy names.
func GridNames() []string {
	names := make([]string, 0, len(gridCatalog))
	for n := range gridCatalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Grids returns the grid entries sorted by name.
func Grids() []*GridEntry {
	out := make([]*GridEntry, 0, len(gridCatalog))
	for _, n := range GridNames() {
		out = append(out, gridCatalog[n])
	}
	return out
}

// WriteGridCatalog prints the grid-policy catalog as an aligned table.
func WriteGridCatalog(w io.Writer) error {
	width := 0
	for n := range gridCatalog {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, e := range Grids() {
		kind := "routing"
		if e.Exchanges {
			kind = "routing+exchange"
		}
		if _, err := fmt.Fprintf(w, "%-*s  %-16s  %s\n", width, e.Name, kind, e.Desc); err != nil {
			return err
		}
	}
	return nil
}

// WriteCatalog prints the catalog as an aligned table (the -list-policies
// output shared by every command).
func WriteCatalog(w io.Writer) error {
	width := 0
	for n := range catalog {
		if len(n) > width {
			width = len(n)
		}
	}
	capw := 0
	for _, e := range All() {
		if l := len(e.Caps.String()); l > capw {
			capw = l
		}
	}
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", width, e.Name, capw, e.Caps.String(), e.Desc); err != nil {
			return err
		}
	}
	return nil
}
