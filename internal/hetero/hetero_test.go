package hetero

import (
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workload"
)

func smallGrid() *platform.Grid {
	return &platform.Grid{
		Name: "test",
		Clusters: []*platform.Cluster{
			{Name: "fast", Nodes: 16, ProcsPerNode: 1, Speed: 2.0},
			{Name: "slow", Nodes: 32, ProcsPerNode: 1, Speed: 0.5},
		},
	}
}

func testJobs(seed uint64, n, maxP int) []*workload.Job {
	return workload.Parallel(workload.GenConfig{N: n, M: maxP, Seed: seed})
}

func TestSpeedAwareLPTUsesAllClusters(t *testing.T) {
	g := smallGrid()
	jobs := testJobs(1, 60, 16)
	asg, err := Schedule(jobs, g, SpeedAwareLPT, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(jobs, g); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, ci := range asg.JobCluster {
		counts[ci]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("one cluster unused: %v", counts)
	}
}

func TestSpeedAwareBeatsBaselines(t *testing.T) {
	g := smallGrid()
	jobs := testJobs(2, 80, 16)
	lpt, err := Schedule(jobs, g, SpeedAwareLPT, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Schedule(jobs, g, LargestOnly, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if lpt.Makespan >= big.Makespan {
		t.Fatalf("speed-aware (%v) not better than largest-only (%v)",
			lpt.Makespan, big.Makespan)
	}
	lb := LowerBound(jobs, g)
	if lpt.Makespan < lb*(1-1e-9) {
		t.Fatalf("makespan %v below grid lower bound %v", lpt.Makespan, lb)
	}
}

func TestSpeedMatters(t *testing.T) {
	// Same topology, one cluster 4x faster: the speed-aware partition
	// must load it more (in job work) than the speed-blind round-robin.
	g := smallGrid()
	jobs := testJobs(3, 100, 8)
	lpt, err := Schedule(jobs, g, SpeedAwareLPT, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	workOn := func(asg *Assignment, cluster int) float64 {
		var w float64
		for _, j := range jobs {
			if asg.JobCluster[j.ID] == cluster {
				mw, _ := j.MinWork(g.Clusters[cluster].Procs())
				w += mw
			}
		}
		return w
	}
	// fast cluster: 16 procs × speed 2 = 32 capacity units; slow: 16.
	// The LPT rule should give the fast cluster roughly 2/3 of the work.
	fast, slow := workOn(lpt, 0), workOn(lpt, 1)
	if fast <= slow {
		t.Fatalf("speed-aware gave fast cluster %v work vs slow %v", fast, slow)
	}
}

func TestLargestOnlyRejectsOversized(t *testing.T) {
	g := smallGrid() // largest is "slow" with 32 procs
	j := &workload.Job{
		ID: 1, Kind: workload.Rigid, Weight: 1, DueDate: -1,
		SeqTime: 10, MinProcs: 33, MaxProcs: 33, Model: workload.Linear{},
	}
	if _, err := Schedule([]*workload.Job{j}, g, LargestOnly, 0.01); err == nil {
		t.Fatal("oversized job accepted")
	}
	// It fits nowhere, so every partition must reject it.
	if _, err := Schedule([]*workload.Job{j}, g, SpeedAwareLPT, 0.01); err == nil {
		t.Fatal("unfittable job accepted by LPT")
	}
}

func TestWideJobRoutedToWideCluster(t *testing.T) {
	g := smallGrid()
	// 24-proc job only fits the slow 32-proc cluster.
	wide := &workload.Job{
		ID: 0, Kind: workload.Rigid, Weight: 1, DueDate: -1,
		SeqTime: 240, MinProcs: 24, MaxProcs: 24, Model: workload.Linear{},
	}
	asg, err := Schedule([]*workload.Job{wide}, g, SpeedAwareLPT, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if asg.JobCluster[0] != 1 {
		t.Fatalf("wide job on cluster %d, want 1", asg.JobCluster[0])
	}
}

func TestCIMENTGridSchedule(t *testing.T) {
	g := platform.CIMENT()
	jobs := testJobs(5, 120, 64)
	asg, err := Schedule(jobs, g, SpeedAwareLPT, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(jobs, g); err != nil {
		t.Fatal(err)
	}
	if asg.Makespan <= 0 {
		t.Fatal("degenerate makespan")
	}
}

func TestEmptyGridRejected(t *testing.T) {
	if _, err := Schedule(nil, &platform.Grid{}, SpeedAwareLPT, 0.01); err == nil {
		t.Fatal("empty grid accepted")
	}
}

// Property: all partitions produce complete, valid assignments above the
// grid lower bound, and speed-aware LPT is never worse than round-robin
// by more than 3x (loose envelope catching gross partition bugs).
func TestHeteroProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw%40) + 1
		g := &platform.Grid{Name: "p", Clusters: []*platform.Cluster{
			{Name: "a", Nodes: rng.IntRange(4, 16), ProcsPerNode: 1, Speed: rng.Range(0.5, 2)},
			{Name: "b", Nodes: rng.IntRange(4, 16), ProcsPerNode: 1, Speed: rng.Range(0.5, 2)},
			{Name: "c", Nodes: rng.IntRange(4, 16), ProcsPerNode: 1, Speed: rng.Range(0.5, 2)},
		}}
		minWidth := g.Clusters[0].Procs()
		for _, c := range g.Clusters {
			if c.Procs() < minWidth {
				minWidth = c.Procs()
			}
		}
		jobs := testJobs(seed, n, minWidth)
		lb := LowerBound(jobs, g)
		var spans [2]float64
		for k, part := range []Partition{SpeedAwareLPT, RoundRobin} {
			asg, err := Schedule(jobs, g, part, 0.02)
			if err != nil {
				return false
			}
			if asg.Validate(jobs, g) != nil {
				return false
			}
			if asg.Makespan < lb*(1-1e-6) {
				return false
			}
			spans[k] = asg.Makespan
		}
		return spans[0] <= 3*spans[1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
