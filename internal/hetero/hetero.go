// Package hetero schedules Parallel Tasks across a light grid of
// speed-heterogeneous clusters — the uniform-processors view that §2.2
// says the PT model accommodates ("the heterogeneity of computational
// units or communication links can also be considered by uniform or
// unrelated processors") and that §5.2's multi-cluster setting requires.
//
// The algorithm is two-level, matching the paper's architecture: a
// grid-level partitioner assigns each job to one cluster (jobs never
// span clusters — inter-cluster links are slow, the whole premise of the
// light grid), then the §4.1 MRT algorithm schedules each cluster
// independently. The grid makespan is the maximum over clusters.
package hetero

import (
	"fmt"
	"sort"

	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Assignment is the outcome of a grid-level schedule.
type Assignment struct {
	// PerCluster holds one schedule per grid cluster (same order as the
	// grid's cluster list). Durations inside each schedule are in the
	// cluster's local (speed-scaled) time.
	PerCluster []*sched.Schedule
	// JobCluster maps job ID to its cluster index.
	JobCluster map[int]int
	// Makespan is the grid makespan (max over clusters, in real time).
	Makespan float64
}

// Partition selects the grid-level job-to-cluster rule.
type Partition int

const (
	// SpeedAwareLPT deals jobs in decreasing minimal-work order to the
	// cluster with the lowest accumulated normalized load
	// (work / (procs × speed)) that can hold the job — the natural
	// uniform-machines LPT.
	SpeedAwareLPT Partition = iota
	// LargestOnly sends everything to the cluster with the most
	// processors (the "keep using your biggest machine" baseline).
	LargestOnly
	// RoundRobin deals jobs cyclically over clusters that fit them
	// (the speed-blind baseline).
	RoundRobin
)

// Schedule partitions the jobs over the grid and runs MRT per cluster.
// Moldable profiles are interpreted on the reference speed; each
// cluster's execution scales them by 1/Speed.
func Schedule(jobs []*workload.Job, g *platform.Grid, part Partition, eps float64) (*Assignment, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(g.Clusters) == 0 {
		return nil, fmt.Errorf("hetero: empty grid")
	}
	asg := &Assignment{JobCluster: map[int]int{}}

	// Feasibility: every job must fit in at least one cluster.
	fits := func(j *workload.Job, c *platform.Cluster) bool {
		return j.MinProcs <= c.Procs()
	}
	for _, j := range jobs {
		ok := false
		for _, c := range g.Clusters {
			if fits(j, c) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("hetero: job %d fits no cluster", j.ID)
		}
	}

	buckets := make([][]*workload.Job, len(g.Clusters))
	switch part {
	case LargestOnly:
		big := 0
		for i, c := range g.Clusters {
			if c.Procs() > g.Clusters[big].Procs() {
				big = i
			}
		}
		for _, j := range jobs {
			if !fits(j, g.Clusters[big]) {
				return nil, fmt.Errorf("hetero: job %d does not fit the largest cluster", j.ID)
			}
			buckets[big] = append(buckets[big], j)
			asg.JobCluster[j.ID] = big
		}
	case RoundRobin:
		k := 0
		for _, j := range jobs {
			for tries := 0; tries < len(g.Clusters); tries++ {
				i := (k + tries) % len(g.Clusters)
				if fits(j, g.Clusters[i]) {
					buckets[i] = append(buckets[i], j)
					asg.JobCluster[j.ID] = i
					k = i + 1
					break
				}
			}
		}
	default: // SpeedAwareLPT
		ordered := append([]*workload.Job(nil), jobs...)
		sort.SliceStable(ordered, func(a, b int) bool {
			wa, _ := ordered[a].MinWork(maxProcs(g))
			wb, _ := ordered[b].MinWork(maxProcs(g))
			if wa != wb {
				return wa > wb
			}
			return ordered[a].ID < ordered[b].ID
		})
		load := make([]float64, len(g.Clusters)) // normalized drain time
		for _, j := range ordered {
			best := -1
			bestCost := 0.0
			for i, c := range g.Clusters {
				if !fits(j, c) {
					continue
				}
				// Estimated completion on cluster i: the area term (queue
				// drain plus this job's work) or the job's own critical
				// time on that cluster's speed, whichever binds. Pure
				// area balancing would park long jobs on slow clusters
				// and lose to the critical path.
				w, _ := j.MinWork(c.Procs())
				tm, _ := j.MinTime(c.Procs())
				cost := load[i] + w/(float64(c.Procs())*c.Speed)
				if crit := tm / c.Speed; crit > cost {
					cost = crit
				}
				if best < 0 || cost < bestCost {
					best = i
					bestCost = cost
				}
			}
			c := g.Clusters[best]
			w, _ := j.MinWork(c.Procs())
			load[best] += w / (float64(c.Procs()) * c.Speed)
			buckets[best] = append(buckets[best], j)
			asg.JobCluster[j.ID] = best
		}
	}

	// Per-cluster MRT, then scale to real time by the cluster speed.
	asg.PerCluster = make([]*sched.Schedule, len(g.Clusters))
	for i, bucket := range buckets {
		c := g.Clusters[i]
		if len(bucket) == 0 {
			asg.PerCluster[i] = sched.New(c.Procs())
			continue
		}
		res, err := moldable.MRT(bucket, c.Procs(), eps)
		if err != nil {
			return nil, fmt.Errorf("hetero: cluster %s: %w", c.Name, err)
		}
		asg.PerCluster[i] = res.Schedule
		if mk := res.Schedule.Makespan() / c.Speed; mk > asg.Makespan {
			asg.Makespan = mk
		}
	}
	return asg, nil
}

func maxProcs(g *platform.Grid) int {
	mx := 0
	for _, c := range g.Clusters {
		if c.Procs() > mx {
			mx = c.Procs()
		}
	}
	return mx
}

// LowerBound returns a grid makespan lower bound: total minimal work over
// aggregate speed-weighted capacity, and the fastest-cluster critical job.
func LowerBound(jobs []*workload.Job, g *platform.Grid) float64 {
	var capacity float64 // processor-speed units
	fastest := 0.0
	biggest := 0
	for _, c := range g.Clusters {
		capacity += float64(c.Procs()) * c.Speed
		if c.Speed > fastest {
			fastest = c.Speed
		}
		if c.Procs() > biggest {
			biggest = c.Procs()
		}
	}
	var work float64
	critical := 0.0
	for _, j := range jobs {
		w, _ := j.MinWork(biggest)
		work += w
		t, _ := j.MinTime(biggest)
		if t/fastest > critical {
			critical = t / fastest
		}
	}
	area := work / capacity
	if critical > area {
		return critical
	}
	return area
}

// Validate checks the assignment: every cluster schedule valid, every
// job placed exactly once, widths respected.
func (a *Assignment) Validate(jobs []*workload.Job, g *platform.Grid) error {
	seen := map[int]bool{}
	for i, s := range a.PerCluster {
		if s.M != g.Clusters[i].Procs() {
			return fmt.Errorf("hetero: cluster %d schedule width %d != %d", i, s.M, g.Clusters[i].Procs())
		}
		if err := s.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}); err != nil {
			return fmt.Errorf("hetero: cluster %d: %w", i, err)
		}
		for _, al := range s.Allocs {
			if seen[al.Job.ID] {
				return fmt.Errorf("hetero: job %d scheduled twice", al.Job.ID)
			}
			seen[al.Job.ID] = true
			if a.JobCluster[al.Job.ID] != i {
				return fmt.Errorf("hetero: job %d mapped to cluster %d but scheduled on %d",
					al.Job.ID, a.JobCluster[al.Job.ID], i)
			}
		}
	}
	for _, j := range jobs {
		if !seen[j.ID] {
			return fmt.Errorf("hetero: job %d missing", j.ID)
		}
	}
	return nil
}
