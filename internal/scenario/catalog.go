package scenario

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
)

// RunOptions carries the invocation-time inputs a Spec does not pin:
// the base seed and the scale. Effective values resolve in Run.
type RunOptions struct {
	// Seed is the base RNG seed (the CLI -seed flag).
	Seed uint64
	// SeedExplicit marks Seed as user-chosen: it then overrides a
	// Spec-pinned seed instead of deferring to it.
	SeedExplicit bool
	// Scale overrides the Spec's pinned scale fieldwise (nonzero
	// fields win).
	Scale Scale
}

// Result is the output of running one Spec: a table for almost every
// kind, or a custom renderer for figure kinds (fig2's two series).
type Result struct {
	// Table is the produced table; nil when the kind renders custom
	// output (then Render is the only way to emit it).
	Table *trace.Table
	// Options echoes the fully resolved RunOptions the runner saw
	// (Spec-pinned seed/scale merged with the invocation's), so
	// callers can report the effective seed without re-deriving the
	// precedence rules.
	Options RunOptions
	// render emits custom (non-table) output; nil for table results.
	render func(w io.Writer) error
}

// TableResult wraps a table as a Result.
func TableResult(t *trace.Table) *Result { return &Result{Table: t} }

// CustomResult wraps a bespoke renderer (figures) as a Result.
func CustomResult(render func(w io.Writer) error) *Result {
	return &Result{render: render}
}

// Emit writes the result: tables aligned (or CSV), custom renders
// verbatim (they have no CSV form, matching the legacy fig2 output).
func (r *Result) Emit(w io.Writer, csv bool) error {
	if r.Table != nil {
		if csv {
			return r.Table.WriteCSV(w)
		}
		return r.Table.Write(w)
	}
	if r.render != nil {
		return r.render(w)
	}
	return fmt.Errorf("scenario: empty result")
}

// Runner expands one Spec into cells and runs them (on the experiment
// worker pool when opt.Scale.Workers > 1). The seed and scale in opt
// are already resolved against the Spec.
type Runner func(spec *Spec, opt RunOptions) (*Result, error)

var (
	kinds = map[string]Runner{}
	// builtins is the ordered catalog: registration order is display
	// and "all"-expansion order (the legacy CLI order).
	builtins []*Spec
	byID     = map[string]*Spec{}
)

// RegisterKind installs the interpreter for a kind. Panics on
// duplicates: kinds register from init functions and a collision is a
// programming error.
func RegisterKind(kind string, r Runner) {
	if kind == "" || r == nil {
		panic("scenario: RegisterKind with empty kind or nil runner")
	}
	if _, dup := kinds[kind]; dup {
		panic(fmt.Sprintf("scenario: kind %q registered twice", kind))
	}
	kinds[kind] = r
}

// Kinds returns the sorted registered kind names.
func Kinds() []string {
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Register adds a built-in Spec to the catalog (panics on duplicate
// ids or invalid specs — built-ins register from init functions).
func Register(s *Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if _, dup := byID[s.ID]; dup {
		panic(fmt.Sprintf("scenario: spec %q registered twice", s.ID))
	}
	if s.Group == "" {
		s.Group = GroupTable
	}
	builtins = append(builtins, s)
	byID[s.ID] = s
}

// Lookup resolves a catalog id.
func Lookup(id string) (*Spec, bool) {
	s, ok := byID[id]
	return s, ok
}

// Catalog returns the built-in specs in registration order (figures,
// then tables, then ablations — the legacy "all" order).
func Catalog() []*Spec {
	return append([]*Spec(nil), builtins...)
}

// CatalogIDs returns the built-in ids in catalog order, optionally
// filtered by group ("" = all groups).
func CatalogIDs(group string) []string {
	var out []string
	for _, s := range builtins {
		if group == "" || s.Group == group {
			out = append(out, s.ID)
		}
	}
	return out
}

// Run validates and executes a Spec: it resolves the kind, merges the
// Spec-pinned seed/scale with the invocation options (an explicit
// -seed wins over the Spec; nonzero option scale fields win), and
// invokes the registered runner.
func Run(s *Spec, opt RunOptions) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	runner, ok := kinds[s.Kind]
	if !ok {
		return nil, fmt.Errorf("scenario: spec %q: unknown kind %q (have: %s)",
			s.ID, s.Kind, strings.Join(Kinds(), " "))
	}
	if s.Seed != nil && !opt.SeedExplicit {
		opt.Seed = *s.Seed
	}
	if s.Scale != nil {
		if opt.Scale.JobFactor == 0 {
			opt.Scale.JobFactor = s.Scale.JobFactor
		}
		if opt.Scale.Workers == 0 {
			opt.Scale.Workers = s.Scale.Workers
		}
	}
	res, err := runner(s, opt)
	if res != nil {
		res.Options = opt
	}
	return res, err
}

// WriteCatalog prints the scenario catalog as an aligned listing
// (the -list-scenarios output, and the source of the usage id list).
func WriteCatalog(w io.Writer) error {
	idw, kindw := 0, 0
	for _, s := range builtins {
		if len(s.ID) > idw {
			idw = len(s.ID)
		}
		if len(s.Kind) > kindw {
			kindw = len(s.Kind)
		}
	}
	for _, s := range builtins {
		desc := s.Desc
		if desc == "" {
			desc = s.Title
		}
		if _, err := fmt.Fprintf(w, "%-*s  %-8s  %-*s  %s\n", idw, s.ID, s.Group, kindw, s.Kind, desc); err != nil {
			return err
		}
	}
	return nil
}
