package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/runtrace"
	"repro/internal/trace"
)

// RunOptions carries the invocation-time inputs a Spec does not pin:
// the base seed, the scale, and — for services running Specs on behalf
// of live clients — the cancellation and progress plumbing. Effective
// values resolve in Run.
type RunOptions struct {
	// Seed is the base RNG seed (the CLI -seed flag).
	Seed uint64
	// SeedExplicit marks Seed as user-chosen: it then overrides a
	// Spec-pinned seed instead of deferring to it.
	SeedExplicit bool
	// Scale overrides the Spec's pinned scale fieldwise (nonzero
	// fields win).
	Scale Scale

	// Context, when non-nil, cancels the run cooperatively: the cell
	// worker pool stops dispatching new cells and the run returns the
	// context's error. Cells already executing finish first, so a
	// cancel is answered within roughly one cell's duration.
	Context context.Context
	// OnCellsStart observes the worker pool discovering work: it is
	// called with the cell count of every fan-out the run performs
	// (nested fan-outs report too, so the running total is the number
	// of cells discovered so far, not a final figure known up front).
	OnCellsStart func(n int)
	// OnCellDone observes one cell finishing with its wall duration.
	// It may be called concurrently from worker goroutines.
	OnCellDone func(index int, d time.Duration)

	// Remote, when non-nil, executes remoteable fan-outs (those whose
	// cells produce plain table rows — see CellRunner) through this
	// runner instead of the local pool: the fleet coordinator side of a
	// distributed run. Fan-outs that are not remoteable (custom cell
	// types, nested sub-runs, figure series) still run locally.
	Remote CellRunner
	// Select, when non-nil, filters which remoteable cells execute:
	// the fleet worker side of a distributed run executes only the
	// cells of its lease and skips the rest (a skipped cell contributes
	// no rows and no work).
	Select func(fanout, cell int) bool
	// OnCellRows observes the typed rows a remoteable cell produced,
	// with the cell's wall duration — how a fleet worker captures
	// results to ship back. It may be called concurrently from worker
	// goroutines.
	OnCellRows func(fanout, cell int, rows [][]any, d time.Duration)
}

// Cell is one typed row of a table Result: the raw (unformatted)
// values the text renderer formats, aligned with Result.Headers. The
// leading Result.Axes values are the cell's sweep coordinates; the
// remaining values are measured metrics.
type Cell struct {
	// Index is the row position (stable across runs for a fixed spec).
	Index int `json:"index"`
	// Values holds the raw row values (ints, floats, strings, bools).
	Values []any `json:"values"`
	// Duration is the cell's wall-clock compute time in seconds; 0 for
	// rows assembled from shared work (multi-row fan-out cells).
	Duration float64 `json:"duration_seconds,omitempty"`
}

// CellView is the machine-readable form of one cell: axis and metric
// values keyed by column header (the /v1 API and -format json shape).
// Should a table repeat a header name, the later column wins.
type CellView struct {
	Index           int            `json:"index"`
	Axes            map[string]any `json:"axes,omitempty"`
	Metrics         map[string]any `json:"metrics,omitempty"`
	DurationSeconds float64        `json:"duration_seconds,omitempty"`
}

// Result is the primary artifact of running one Spec: the typed cells
// (plus identity — spec id, kind, effective seed) for machine
// consumers, with the legacy aligned-text table demoted to one
// renderer over those cells. Figure kinds carry a custom renderer and
// no cells.
type Result struct {
	// SpecID, Kind and Seed echo the resolved identity of the run
	// (filled by Run; empty when a runner is invoked directly).
	SpecID string
	Kind   string
	Seed   uint64
	// Title and Headers name the table; Axes counts the leading
	// sweep-coordinate columns (the rest are metrics).
	Title   string
	Headers []string
	Axes    int
	// Cells are the typed rows (nil for custom-rendered figures).
	Cells []Cell
	// Table is the text rendering of Cells, built once by the table
	// renderer so every consumer shows byte-identical output.
	Table *trace.Table
	// Options echoes the fully resolved RunOptions the runner saw
	// (Spec-pinned seed/scale merged with the invocation's), so
	// callers can report the effective seed without re-deriving the
	// precedence rules.
	Options RunOptions
	// Traces holds the per-cell event traces when the Spec's trace
	// axis was set (cell order, one entry per cell sub-run). They ride
	// outside the table so rendered output and goldens are unchanged.
	Traces []runtrace.CellTrace
	// render emits custom (non-table) output; nil for table results.
	render func(w io.Writer) error
}

// RenderTable is the one text renderer: it formats the typed cells as
// the aligned-text table (identical, byte for byte, to the historical
// direct table construction — trace.Table formatting is unchanged).
func RenderTable(title string, headers []string, cells []Cell) *trace.Table {
	t := trace.NewTable(title, headers...)
	for _, c := range cells {
		t.AddRow(c.Values...)
	}
	return t
}

// NewCellResult builds a table Result from typed cells, deriving the
// text table through RenderTable.
func NewCellResult(title string, headers []string, axes int, cells []Cell) *Result {
	return &Result{
		Title: title, Headers: headers, Axes: axes, Cells: cells,
		Table: RenderTable(title, headers, cells),
	}
}

// TableResult wraps a pre-rendered table as a Result (no typed cells).
func TableResult(t *trace.Table) *Result {
	return &Result{Table: t, Title: t.Title, Headers: t.Headers}
}

// CustomResult wraps a bespoke renderer (figures) as a Result.
func CustomResult(render func(w io.Writer) error) *Result {
	return &Result{render: render}
}

// CellViews returns the cells keyed by column header, split into axis
// and metric maps. Results built from a pre-rendered table
// (TableResult — no typed cells) fall back to the formatted row
// strings so the machine formats never silently drop rows.
func (r *Result) CellViews() []CellView {
	cells := r.Cells
	if cells == nil && r.Table != nil {
		cells = make([]Cell, len(r.Table.Rows))
		for i, row := range r.Table.Rows {
			vals := make([]any, len(row))
			for k, c := range row {
				vals[k] = c
			}
			cells[i] = Cell{Index: i, Values: vals}
		}
	}
	out := make([]CellView, len(cells))
	for i, c := range cells {
		v := CellView{Index: c.Index, DurationSeconds: c.Duration}
		for k, val := range c.Values {
			if k >= len(r.Headers) {
				break
			}
			if k < r.Axes {
				if v.Axes == nil {
					v.Axes = map[string]any{}
				}
				v.Axes[r.Headers[k]] = val
			} else {
				if v.Metrics == nil {
					v.Metrics = map[string]any{}
				}
				v.Metrics[r.Headers[k]] = val
			}
		}
		out[i] = v
	}
	return out
}

// ResultJSON is the machine-readable envelope of a Result (the
// -format json output and the /v1 result payload body).
type ResultJSON struct {
	ID      string     `json:"id,omitempty"`
	Kind    string     `json:"kind,omitempty"`
	Seed    uint64     `json:"seed"`
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers,omitempty"`
	Axes    int        `json:"axes,omitempty"`
	Cells   []CellView `json:"cells,omitempty"`
	// Text carries custom (figure) renders, which have no cell form.
	Text string `json:"text,omitempty"`
}

// JSON returns the machine-readable envelope of the result.
func (r *Result) JSON() (ResultJSON, error) {
	out := ResultJSON{
		ID: r.SpecID, Kind: r.Kind, Seed: r.Seed,
		Title: r.Title, Headers: r.Headers, Axes: r.Axes,
	}
	if r.Table != nil || r.Cells != nil {
		out.Cells = r.CellViews()
		return out, nil
	}
	if r.render != nil {
		var buf bytes.Buffer
		if err := r.render(&buf); err != nil {
			return out, err
		}
		out.Text = buf.String()
		return out, nil
	}
	return out, fmt.Errorf("scenario: empty result")
}

// Emit writes the result: tables aligned (or CSV), custom renders
// verbatim (they have no CSV form, matching the legacy fig2 output).
func (r *Result) Emit(w io.Writer, csv bool) error {
	if csv {
		return r.EmitFormat(w, "csv")
	}
	return r.EmitFormat(w, "text")
}

// EmitFormat writes the result as "text" (the aligned table — byte
// identical to the historical output), "csv", or "json" (the typed
// cell envelope). Custom renders emit their bespoke text under "text"
// and "csv", and wrap it in the JSON envelope under "json".
func (r *Result) EmitFormat(w io.Writer, format string) error {
	switch format {
	case "", "text":
		if r.Table != nil {
			return r.Table.Write(w)
		}
	case "csv":
		if r.Table != nil {
			return r.Table.WriteCSV(w)
		}
	case "json":
		out, err := r.JSON()
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.SetEscapeHTML(false)
		return enc.Encode(out)
	default:
		return fmt.Errorf("scenario: unknown output format %q (text|json|csv)", format)
	}
	if r.render != nil {
		return r.render(w)
	}
	return fmt.Errorf("scenario: empty result")
}

// Runner expands one Spec into cells and runs them (on the experiment
// worker pool when opt.Scale.Workers > 1). The seed and scale in opt
// are already resolved against the Spec.
type Runner func(spec *Spec, opt RunOptions) (*Result, error)

var (
	kinds = map[string]Runner{}
	// builtins is the ordered catalog: registration order is display
	// and "all"-expansion order (the legacy CLI order).
	builtins []*Spec
	byID     = map[string]*Spec{}
)

// RegisterKind installs the interpreter for a kind. Panics on
// duplicates: kinds register from init functions and a collision is a
// programming error.
func RegisterKind(kind string, r Runner) {
	if kind == "" || r == nil {
		panic("scenario: RegisterKind with empty kind or nil runner")
	}
	if _, dup := kinds[kind]; dup {
		panic(fmt.Sprintf("scenario: kind %q registered twice", kind))
	}
	kinds[kind] = r
}

// HasKind reports whether an interpreter is registered for kind (so
// services can reject a Spec at submission time, before queueing it).
func HasKind(kind string) bool {
	_, ok := kinds[kind]
	return ok
}

// Kinds returns the sorted registered kind names.
func Kinds() []string {
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Register adds a built-in Spec to the catalog (panics on duplicate
// ids or invalid specs — built-ins register from init functions).
func Register(s *Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if _, dup := byID[s.ID]; dup {
		panic(fmt.Sprintf("scenario: spec %q registered twice", s.ID))
	}
	if s.Group == "" {
		s.Group = GroupTable
	}
	builtins = append(builtins, s)
	byID[s.ID] = s
}

// Lookup resolves a catalog id.
func Lookup(id string) (*Spec, bool) {
	s, ok := byID[id]
	return s, ok
}

// Catalog returns the built-in specs in registration order (figures,
// then tables, then ablations — the legacy "all" order).
func Catalog() []*Spec {
	return append([]*Spec(nil), builtins...)
}

// CatalogIDs returns the built-in ids in catalog order, optionally
// filtered by group ("" = all groups).
func CatalogIDs(group string) []string {
	var out []string
	for _, s := range builtins {
		if group == "" || s.Group == group {
			out = append(out, s.ID)
		}
	}
	return out
}

// EffectiveSeed resolves the seed precedence rule in one place (Run
// and the HTTP submission path both use it): an explicitly chosen
// invocation seed wins over a Spec-pinned one.
func (s *Spec) EffectiveSeed(opt RunOptions) uint64 {
	if s.Seed != nil && !opt.SeedExplicit {
		return *s.Seed
	}
	return opt.Seed
}

// Run validates and executes a Spec: it resolves the kind, merges the
// Spec-pinned seed/scale with the invocation options (an explicit
// -seed wins over the Spec; nonzero option scale fields win), and
// invokes the registered runner.
func Run(s *Spec, opt RunOptions) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	runner, ok := kinds[s.Kind]
	if !ok {
		return nil, fmt.Errorf("scenario: spec %q: unknown kind %q (have: %s)",
			s.ID, s.Kind, strings.Join(Kinds(), " "))
	}
	opt.Seed = s.EffectiveSeed(opt)
	if s.Scale != nil {
		if opt.Scale.JobFactor == 0 {
			opt.Scale.JobFactor = s.Scale.JobFactor
		}
		if opt.Scale.Workers == 0 {
			opt.Scale.Workers = s.Scale.Workers
		}
	}
	res, err := runner(s, opt)
	if res != nil {
		res.Options = opt
		res.SpecID, res.Kind, res.Seed = s.ID, s.Kind, opt.Seed
	}
	if err == nil && res != nil && s.Traced() && len(res.Traces) == 0 {
		return nil, fmt.Errorf("scenario: spec %q: kind %q does not record traces", s.ID, s.Kind)
	}
	return res, err
}

// WriteCatalog prints the scenario catalog as an aligned listing
// (the -list-scenarios output, and the source of the usage id list).
func WriteCatalog(w io.Writer) error {
	idw, kindw := 0, 0
	for _, s := range builtins {
		if len(s.ID) > idw {
			idw = len(s.ID)
		}
		if len(s.Kind) > kindw {
			kindw = len(s.Kind)
		}
	}
	for _, s := range builtins {
		desc := s.Desc
		if desc == "" {
			desc = s.Title
		}
		if _, err := fmt.Fprintf(w, "%-*s  %-8s  %-*s  %s\n", idw, s.ID, s.Group, kindw, s.Kind, desc); err != nil {
			return err
		}
	}
	return nil
}
