// Package scenario is the declarative experiment layer: a composable
// Spec describes one scenario — workload generator, platform, policy
// set (resolved through internal/registry), grid routing, metric
// selection, seeds and scale — and a kind registry maps each Spec to
// the engine code that expands it into independent cells for the
// experiment worker pool.
//
// Specs are pure data: they build programmatically through functional
// options (scenario.New), encode/decode losslessly as JSON (codec.go),
// and run through the catalog (catalog.go). The built-in catalog
// re-expresses every table and ablation of the paper's evaluation as a
// Spec, and the generic kinds ("offline", "online", "grid") let a JSON
// file describe arbitrary new workload × platform × policy × routing
// combinations without writing Go.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Group classifies a catalog entry for listing and for the "all" /
// "ablations" expansions of cmd/experiments.
const (
	GroupFigure   = "figure"
	GroupTable    = "table"
	GroupAblation = "ablation"
)

// Workload declaratively describes a job stream. It mirrors
// workload.GenConfig plus the generator choice; zero values defer to
// the generator defaults (or to the kind's own defaults).
type Workload struct {
	// Generator selects the job-shape family: "parallel" (default),
	// "sequential", "mixed" or "communities".
	Generator string `json:"generator,omitempty"`
	// N is the job count (before Scale.JobFactor shrinking).
	N int `json:"n,omitempty"`
	// M is the target platform width the generator shapes jobs for.
	M int `json:"m,omitempty"`
	// ArrivalRate is the Poisson arrival rate. 0 (or absent) defers to
	// the kind's default; -1 forces an offline stream (all jobs
	// released at t=0) even when the kind defaults to a positive rate.
	ArrivalRate float64 `json:"arrival_rate,omitempty"`
	// Weighted draws Zipf-biased job weights.
	Weighted bool `json:"weighted,omitempty"`
	// RigidFraction freezes this fraction of jobs rigid.
	RigidFraction float64 `json:"rigid_fraction,omitempty"`
	// MaxProcsCap caps each job's MaxProcs below M.
	MaxProcsCap int `json:"max_procs_cap,omitempty"`
	// SeqMu, SeqSigma override the lognormal sequential-time parameters.
	SeqMu    float64 `json:"seq_mu,omitempty"`
	SeqSigma float64 `json:"seq_sigma,omitempty"`
	// DueDateSlack assigns due dates with slack in [1, DueDateSlack].
	DueDateSlack float64 `json:"due_date_slack,omitempty"`
}

// Cluster declaratively describes one cluster of a grid platform.
type Cluster struct {
	Name  string  `json:"name"`
	M     int     `json:"m"`
	Speed float64 `json:"speed,omitempty"` // default 1
}

// Platform declaratively describes where a scenario runs: a flat
// m-processor cluster, an explicit heterogeneous fleet, or a named
// preset ("ciment").
type Platform struct {
	// M is the single-cluster width (kinds fall back to their default).
	M int `json:"m,omitempty"`
	// Preset names a built-in platform ("ciment" — the Figure 3 grid).
	Preset string `json:"preset,omitempty"`
	// Clusters lists an explicit fleet for grid kinds.
	Clusters []Cluster `json:"clusters,omitempty"`
}

// Grid declaratively describes multi-cluster routing for grid kinds.
type Grid struct {
	// Policy names a registry grid-routing policy ("centralized", ...).
	// Empty sweeps the whole grid catalog.
	Policy string `json:"policy,omitempty"`
	// ExchangePeriod is the router invocation period (virtual seconds).
	ExchangePeriod float64 `json:"exchange_period,omitempty"`
	// Threshold and MaxMove tune the exchange protocols.
	Threshold float64 `json:"threshold,omitempty"`
	MaxMove   int     `json:"max_move,omitempty"`
	// CampaignTasks adds a best-effort campaign of this many tasks.
	// 0 (or absent) defers to the kind's default; -1 disables the
	// campaign entirely.
	CampaignTasks int `json:"campaign_tasks,omitempty"`
	// CampaignRunTime is the per-task duration (default 30).
	CampaignRunTime float64 `json:"campaign_run_time,omitempty"`
}

// Faults declaratively describes a deterministic fault-injection plan.
// A nil Faults field means a permanently healthy fleet — the default,
// with zero cost on the healthy hot path. Times are virtual seconds,
// capacities are processors.
type Faults struct {
	// MTBF enables seeded node churn: crashes arrive with exponential
	// inter-arrival times of this mean (virtual seconds).
	MTBF float64 `json:"mtbf,omitempty"`
	// MTTR is the mean repair time of a churn crash (exponential;
	// default MTBF/10).
	MTTR float64 `json:"mttr,omitempty"`
	// CrashProcs is the number of processors taken per churn crash
	// (default 1; capped at the cluster width).
	CrashProcs int `json:"crash_procs,omitempty"`
	// MaxCrashes bounds the churn process (0 = unlimited; churn also
	// stops on its own once all known work has completed).
	MaxCrashes int `json:"max_crashes,omitempty"`
	// Seed offsets the fault RNG stream from the scenario seed, so the
	// fault schedule can be varied independently of the workload.
	Seed uint64 `json:"seed,omitempty"`
	// Outages schedules deterministic capacity-loss windows.
	Outages []Outage `json:"outages,omitempty"`
	// Trace is a piecewise-constant availability timeline: at each
	// step's time the working-processor count is pinned to its value.
	Trace []AvailStep `json:"trace,omitempty"`
	// Partitions cut clusters off the broker for a window (grid kinds
	// only): no placements, grants or migrations reach a partitioned
	// cluster while the window is open.
	Partitions []PartitionWindow `json:"partitions,omitempty"`
}

// Outage is one scheduled capacity-loss window.
type Outage struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Procs is the capacity lost; 0 (or absent) means the whole cluster.
	Procs int `json:"procs,omitempty"`
}

// AvailStep is one step of a time-varying availability trace.
type AvailStep struct {
	Time  float64 `json:"time"`
	Avail int     `json:"avail"`
}

// PartitionWindow cuts the listed clusters (fleet indices) off the
// broker during [Start, End).
type PartitionWindow struct {
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
	Clusters []int   `json:"clusters"`
}

// Scale shrinks a scenario and selects the replication runner. It is
// the Spec-side mirror of experiments.Scale: a Spec may pin a scale,
// and RunOptions may override it at invocation time.
type Scale struct {
	// JobFactor divides job counts (min result 10); 0/1 = paper scale.
	JobFactor int `json:"job_factor,omitempty"`
	// Workers bounds the cell worker pool (0/1 = sequential).
	Workers int `json:"workers,omitempty"`
}

// Spec is one declarative scenario. Kind selects the engine
// interpreter (a registered cell-expansion function); everything else
// is data the interpreter reads, falling back to the kind's built-in
// defaults for absent fields — so the zero Spec of a kind reproduces
// the paper's table exactly.
type Spec struct {
	// ID is the catalog identity (and CLI argument).
	ID string `json:"id"`
	// Kind names the registered interpreter that expands this Spec.
	Kind string `json:"kind"`
	// Title overrides the output table's title line.
	Title string `json:"title,omitempty"`
	// Group is the catalog group (figure/table/ablation); defaults to
	// "table" for registered specs.
	Group string `json:"group,omitempty"`
	// Desc is the one-line catalog description.
	Desc string `json:"desc,omitempty"`
	// Seed pins the base RNG seed; nil defers to RunOptions.Seed.
	Seed *uint64 `json:"seed,omitempty"`

	Workload *Workload `json:"workload,omitempty"`
	Platform *Platform `json:"platform,omitempty"`
	// Policies names registry queue/offline policies the kind sweeps.
	Policies []string `json:"policies,omitempty"`
	Grid     *Grid    `json:"grid,omitempty"`
	// Faults is the fault-injection plan (nil = healthy fleet).
	Faults *Faults `json:"faults,omitempty"`
	// Trace switches per-cell event tracing on (nil = no tracing, the
	// batch hot path pays nothing).
	Trace *Trace `json:"trace,omitempty"`
	// Metrics selects report columns for the generic kinds.
	Metrics []string `json:"metrics,omitempty"`
	// Scale pins a scale for this Spec (RunOptions overrides win).
	Scale *Scale `json:"scale,omitempty"`

	// Params carries kind-specific knobs (sweep axes, tolerances...).
	// Values are JSON scalars or arrays; use the typed accessors, which
	// coerce the float64s JSON decoding produces.
	Params map[string]any `json:"params,omitempty"`
}

// Option is a functional Spec option for the Go builder.
type Option func(*Spec)

// New builds a Spec from functional options.
func New(id, kind string, opts ...Option) *Spec {
	s := &Spec{ID: id, Kind: kind}
	for _, o := range opts {
		o(s)
	}
	return s
}

// WithTitle sets the output title line.
func WithTitle(t string) Option { return func(s *Spec) { s.Title = t } }

// WithGroup sets the catalog group.
func WithGroup(g string) Option { return func(s *Spec) { s.Group = g } }

// WithDesc sets the catalog description.
func WithDesc(d string) Option { return func(s *Spec) { s.Desc = d } }

// WithSeed pins the base seed.
func WithSeed(seed uint64) Option { return func(s *Spec) { s.Seed = &seed } }

// WithWorkload sets the workload description.
func WithWorkload(w Workload) Option { return func(s *Spec) { s.Workload = &w } }

// WithPlatform sets the platform description.
func WithPlatform(p Platform) Option { return func(s *Spec) { s.Platform = &p } }

// WithPolicies sets the policy sweep list.
func WithPolicies(names ...string) Option { return func(s *Spec) { s.Policies = names } }

// WithGrid sets the grid routing description.
func WithGrid(g Grid) Option { return func(s *Spec) { s.Grid = &g } }

// WithFaults sets the fault-injection plan.
func WithFaults(f Faults) Option { return func(s *Spec) { s.Faults = &f } }

// WithTrace switches event tracing on.
func WithTrace(t Trace) Option { return func(s *Spec) { s.Trace = &t } }

// WithMetrics selects report columns for the generic kinds.
func WithMetrics(cols ...string) Option { return func(s *Spec) { s.Metrics = cols } }

// WithScale pins a scale.
func WithScale(sc Scale) Option { return func(s *Spec) { s.Scale = &sc } }

// WithParam sets one kind-specific parameter.
func WithParam(key string, value any) Option {
	return func(s *Spec) {
		if s.Params == nil {
			s.Params = map[string]any{}
		}
		s.Params[key] = value
	}
}

// Validate checks the structural invariants common to every kind.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("scenario: nil spec")
	}
	if s.ID == "" {
		return fmt.Errorf("scenario: spec has no id")
	}
	if s.Kind == "" {
		return fmt.Errorf("scenario: spec %q has no kind", s.ID)
	}
	switch s.Group {
	case "", GroupFigure, GroupTable, GroupAblation:
	default:
		return fmt.Errorf("scenario: spec %q: unknown group %q", s.ID, s.Group)
	}
	if s.Workload != nil {
		switch s.Workload.Generator {
		case "", "parallel", "sequential", "mixed", "communities":
		default:
			return fmt.Errorf("scenario: spec %q: unknown workload generator %q", s.ID, s.Workload.Generator)
		}
		if s.Workload.N < 0 || s.Workload.M < 0 {
			return fmt.Errorf("scenario: spec %q: negative workload size", s.ID)
		}
	}
	if p := s.Platform; p != nil {
		if p.Preset != "" && p.Preset != "ciment" {
			return fmt.Errorf("scenario: spec %q: unknown platform preset %q", s.ID, p.Preset)
		}
		for _, c := range p.Clusters {
			if c.M <= 0 {
				return fmt.Errorf("scenario: spec %q: cluster %q has m=%d", s.ID, c.Name, c.M)
			}
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("scenario: spec %q: %w", s.ID, err)
		}
	}
	if s.Trace != nil {
		if err := s.Trace.Validate(); err != nil {
			return fmt.Errorf("scenario: spec %q: %w", s.ID, err)
		}
	}
	for k, v := range s.Params {
		if !validParam(v) {
			return fmt.Errorf("scenario: spec %q: param %q: unsupported value %T", s.ID, k, v)
		}
	}
	return nil
}

// Validate checks the fault plan's structural invariants.
func (f *Faults) Validate() error {
	if f.MTBF < 0 || f.MTTR < 0 {
		return fmt.Errorf("faults: negative MTBF/MTTR")
	}
	if f.MTTR > 0 && f.MTBF == 0 {
		return fmt.Errorf("faults: MTTR without MTBF")
	}
	if f.CrashProcs < 0 || f.MaxCrashes < 0 {
		return fmt.Errorf("faults: negative crash_procs/max_crashes")
	}
	if (f.CrashProcs > 0 || f.MaxCrashes > 0) && f.MTBF == 0 {
		return fmt.Errorf("faults: crash_procs/max_crashes without MTBF")
	}
	for i, o := range f.Outages {
		if o.Start < 0 || math.IsNaN(o.Start) || math.IsNaN(o.End) {
			return fmt.Errorf("faults: outage %d starts at %v", i, o.Start)
		}
		if o.End <= o.Start {
			return fmt.Errorf("faults: outage %d window [%v, %v) is empty", i, o.Start, o.End)
		}
		if o.Procs < 0 {
			return fmt.Errorf("faults: outage %d takes %d procs", i, o.Procs)
		}
	}
	for i, st := range f.Trace {
		if st.Time < 0 || math.IsNaN(st.Time) {
			return fmt.Errorf("faults: trace step %d at time %v", i, st.Time)
		}
		if st.Avail < 0 {
			return fmt.Errorf("faults: trace step %d pins avail %d", i, st.Avail)
		}
		if i > 0 && st.Time < f.Trace[i-1].Time {
			return fmt.Errorf("faults: trace step %d goes back in time", i)
		}
	}
	for i, p := range f.Partitions {
		if p.Start < 0 || math.IsNaN(p.Start) || math.IsNaN(p.End) || p.End <= p.Start {
			return fmt.Errorf("faults: partition %d window [%v, %v) invalid", i, p.Start, p.End)
		}
		if len(p.Clusters) == 0 {
			return fmt.Errorf("faults: partition %d cuts no clusters", i)
		}
		for _, c := range p.Clusters {
			if c < 0 {
				return fmt.Errorf("faults: partition %d lists cluster %d", i, c)
			}
		}
	}
	if f.MTBF == 0 && len(f.Outages) == 0 && len(f.Trace) == 0 && len(f.Partitions) == 0 {
		return fmt.Errorf("faults: empty plan (omit the faults field instead)")
	}
	return nil
}

// Trace is the event-tracing axis: when present (with Events true) kind
// runners record one structured event trace per cell sub-run and attach
// them to the Result.
type Trace struct {
	// Events must be true — omit the trace field entirely to keep
	// tracing off.
	Events bool `json:"events"`
	// MaxEvents caps recorded events per cell sub-run (0 = unlimited;
	// the /v1 API clamps inline specs server-side). Events beyond the
	// cap are counted as dropped, not stored.
	MaxEvents int `json:"max_events,omitempty"`
}

// Validate checks the trace axis's structural invariants.
func (t *Trace) Validate() error {
	if !t.Events {
		return fmt.Errorf("trace: events must be true (omit the trace field instead)")
	}
	if t.MaxEvents < 0 {
		return fmt.Errorf("trace: negative max_events")
	}
	return nil
}

// Traced reports whether the spec requests event tracing.
func (s *Spec) Traced() bool { return s.Trace != nil && s.Trace.Events }

func validParam(v any) bool {
	switch v := v.(type) {
	case nil, bool, string, float64, int:
		return true
	case []any:
		for _, e := range v {
			if !validParam(e) {
				return false
			}
		}
		return true
	case []int, []float64, []string:
		return true
	default:
		return false
	}
}

// ParamKeys returns the sorted parameter names (for deterministic
// listings and error messages).
func (s *Spec) ParamKeys() []string {
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParamType declares the expected shape of one kind parameter, for
// CheckParams.
type ParamType int

const (
	FloatParam  ParamType = iota // scalar number (ints coerce)
	IntParam                     // scalar number, used as int
	FloatsParam                  // list of numbers
	IntsParam                    // list of numbers, used as ints
	StringParam
	StringsParam
	BoolParam
)

func (p ParamType) String() string {
	switch p {
	case FloatParam:
		return "number"
	case IntParam:
		return "integer"
	case FloatsParam:
		return "list of numbers"
	case IntsParam:
		return "list of integers"
	case StringParam:
		return "string"
	case StringsParam:
		return "list of strings"
	case BoolParam:
		return "boolean"
	}
	return "unknown"
}

// CheckParams enforces a kind's parameter schema: every present param
// key must be declared and its value must coerce to the declared type.
// Kind runners call this first so a typo'd key or a mistyped value in
// a scenario file fails loudly instead of silently falling back to the
// kind's default (the same contract the codec applies to struct
// fields).
func (s *Spec) CheckParams(allowed map[string]ParamType) error {
	for _, key := range s.ParamKeys() {
		pt, ok := allowed[key]
		if !ok {
			known := make([]string, 0, len(allowed))
			for k := range allowed {
				known = append(known, k)
			}
			sort.Strings(known)
			return fmt.Errorf("scenario: spec %q: unknown param %q for kind %q (known: %s)",
				s.ID, key, s.Kind, strings.Join(known, " "))
		}
		v := s.Params[key]
		okType := false
		switch pt {
		case FloatParam:
			_, okType = toFloat(v)
		case IntParam:
			var f float64
			if f, okType = toFloat(v); okType {
				okType = f == math.Trunc(f)
			}
		case FloatsParam, IntsParam:
			fs := s.Floats(key, nil)
			okType = len(fs) > 0
			if okType && pt == IntsParam {
				for _, f := range fs {
					if f != math.Trunc(f) {
						okType = false
						break
					}
				}
			}
		case StringParam:
			_, okType = v.(string)
		case StringsParam:
			okType = len(s.Strings(key, nil)) > 0
		case BoolParam:
			_, okType = v.(bool)
		}
		if !okType {
			return fmt.Errorf("scenario: spec %q: param %q must be a %s (lists non-empty, integers whole), got %v (%T)",
				s.ID, key, pt, v, v)
		}
	}
	return nil
}

// --- typed parameter accessors -------------------------------------
//
// JSON decoding produces float64 and []any; Go-built specs hold native
// ints and slices. The accessors coerce both so a round-tripped Spec
// behaves identically to the Go-built one.

// Float returns the named scalar, or def when absent.
func (s *Spec) Float(key string, def float64) float64 {
	v, ok := s.Params[key]
	if !ok {
		return def
	}
	f, ok := toFloat(v)
	if !ok {
		return def
	}
	return f
}

// Int returns the named scalar as an int, or def when absent.
func (s *Spec) Int(key string, def int) int {
	f := s.Float(key, math.NaN())
	if math.IsNaN(f) {
		return def
	}
	return int(f)
}

// Bool returns the named flag, or def when absent.
func (s *Spec) Bool(key string, def bool) bool {
	if v, ok := s.Params[key]; ok {
		if b, ok := v.(bool); ok {
			return b
		}
	}
	return def
}

// String returns the named string, or def when absent.
func (s *Spec) String(key, def string) string {
	if v, ok := s.Params[key]; ok {
		if str, ok := v.(string); ok {
			return str
		}
	}
	return def
}

// Floats returns the named list, or def when absent.
func (s *Spec) Floats(key string, def []float64) []float64 {
	v, ok := s.Params[key]
	if !ok {
		return def
	}
	switch v := v.(type) {
	case []float64:
		return v
	case []int:
		out := make([]float64, len(v))
		for i, e := range v {
			out[i] = float64(e)
		}
		return out
	case []any:
		out := make([]float64, 0, len(v))
		for _, e := range v {
			f, ok := toFloat(e)
			if !ok {
				return def
			}
			out = append(out, f)
		}
		return out
	}
	return def
}

// Ints returns the named list as ints, or def when absent.
func (s *Spec) Ints(key string, def []int) []int {
	fs := s.Floats(key, nil)
	if fs == nil {
		return def
	}
	out := make([]int, len(fs))
	for i, f := range fs {
		out[i] = int(f)
	}
	return out
}

// Strings returns the named string list, or def when absent.
func (s *Spec) Strings(key string, def []string) []string {
	v, ok := s.Params[key]
	if !ok {
		return def
	}
	switch v := v.(type) {
	case []string:
		return v
	case []any:
		out := make([]string, 0, len(v))
		for _, e := range v {
			str, ok := e.(string)
			if !ok {
				return def
			}
			out = append(out, str)
		}
		return out
	}
	return def
}

func toFloat(v any) (float64, bool) {
	switch v := v.(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	}
	return 0, false
}
