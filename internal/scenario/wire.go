package scenario

import (
	"fmt"
	"strconv"
)

// Value is one typed table value on the wire or on disk. Plain JSON
// cannot carry the distinction the text renderer depends on — every
// JSON number decodes to float64, but the renderer formats ints via %v
// and floats via strconv 'g' — so values ship with an explicit type tag
// and a strconv round-trip that preserves the exact Go type and value.
// Both the fleet cell protocol and the durable run store rely on this
// codec for their byte-identity guarantees.
type Value struct {
	// T is the type tag: "i" int, "u" uint64, "f" float64, "s" string,
	// "b" bool.
	T string `json:"t"`
	V string `json:"v"`
}

// EncodeValue encodes one table value. Types outside the table-row
// vocabulary error loudly: silently coercing them would break the
// byte-identity contract far from the cause.
func EncodeValue(v any) (Value, error) {
	switch v := v.(type) {
	case int:
		return Value{T: "i", V: strconv.Itoa(v)}, nil
	case int64:
		return Value{T: "i", V: strconv.FormatInt(v, 10)}, nil
	case uint64:
		return Value{T: "u", V: strconv.FormatUint(v, 10)}, nil
	case float64:
		// Shortest round-trip form: ParseFloat returns the identical
		// bit pattern (NaN and ±Inf included).
		return Value{T: "f", V: strconv.FormatFloat(v, 'g', -1, 64)}, nil
	case string:
		return Value{T: "s", V: v}, nil
	case bool:
		return Value{T: "b", V: strconv.FormatBool(v)}, nil
	}
	return Value{}, fmt.Errorf("scenario: cell value %v (%T) is not a table type (int/uint64/float64/string/bool)", v, v)
}

// Decode restores the exact typed value.
func (v Value) Decode() (any, error) {
	switch v.T {
	case "i":
		n, err := strconv.Atoi(v.V)
		if err != nil {
			return nil, fmt.Errorf("scenario: bad int value %q: %v", v.V, err)
		}
		return n, nil
	case "u":
		n, err := strconv.ParseUint(v.V, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: bad uint value %q: %v", v.V, err)
		}
		return n, nil
	case "f":
		f, err := strconv.ParseFloat(v.V, 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: bad float value %q: %v", v.V, err)
		}
		return f, nil
	case "s":
		return v.V, nil
	case "b":
		b, err := strconv.ParseBool(v.V)
		if err != nil {
			return nil, fmt.Errorf("scenario: bad bool value %q: %v", v.V, err)
		}
		return b, nil
	}
	return nil, fmt.Errorf("scenario: unknown value tag %q", v.T)
}

// EncodeRows encodes a cell's typed rows.
func EncodeRows(rows [][]any) ([][]Value, error) {
	out := make([][]Value, len(rows))
	for i, row := range rows {
		out[i] = make([]Value, len(row))
		for j, v := range row {
			ev, err := EncodeValue(v)
			if err != nil {
				return nil, err
			}
			out[i][j] = ev
		}
	}
	return out, nil
}

// DecodeRows restores a cell's typed rows.
func DecodeRows(rows [][]Value) ([][]any, error) {
	out := make([][]any, len(rows))
	for i, row := range rows {
		out[i] = make([]any, len(row))
		for j, v := range row {
			dv, err := v.Decode()
			if err != nil {
				return nil, err
			}
			out[i][j] = dv
		}
	}
	return out, nil
}
