package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Encode writes the Spec as indented JSON. Encoding then Decoding
// yields a Spec that runs cell-for-cell identically to the original
// (the typed Params accessors absorb JSON's float64/[]any decoding).
func (s *Spec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(s)
}

// MarshalIndent returns the Spec's canonical JSON bytes.
func (s *Spec) MarshalIndent() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses a Spec from JSON, rejecting unknown fields (a typo in
// a scenario file should fail loudly, not silently fall back to a
// default) and validating the result.
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads a Spec from a JSON file.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}
