package scenario

import (
	"context"
	"time"
)

// CellRunner executes one remoteable cell of a running Spec somewhere
// other than the local worker pool — the seam the distributed fleet
// coordinator plugs into RunOptions.Remote. A remoteable cell is a
// fan-out unit whose entire product is typed table rows (ints, floats,
// strings, bools): it can execute in another process and ship its rows
// back without losing anything the table renderer needs.
//
// fanout is the ordinal of the fan-out within the run (kind runners
// perform their remoteable fan-outs sequentially, so ordinals are
// deterministic for a fixed spec) and cell the index within it; the
// pair identifies the unit of work on both sides of the wire. The
// returned duration is the executing side's wall-clock measurement.
//
// Determinism contract: RunCell must return exactly the rows — same
// values, same Go types — that executing the cell locally would have
// produced. The engine reassembles results in cell-index order, so the
// rendered table is byte-identical to a single-process run regardless
// of how many workers executed cells, in what order they finished, or
// how often a cell was retried.
type CellRunner interface {
	RunCell(ctx context.Context, fanout, cell int) (rows [][]any, d time.Duration, err error)
}
