package scenario

// This file holds the wire types of the scenario-run HTTP surface.
// The handlers themselves live in internal/api (the shared /v1
// run-lifecycle API plus the legacy POST /scenarios shim); keeping the
// request/response shapes here lets api, the services and the client
// SDK share one definition without an import cycle.

// HTTPRequest is the body of POST /v1/runs and of the legacy
// POST /scenarios shim: either a catalog id or an inline Spec, plus
// invocation options. Exactly one of ID and Spec must be set.
type HTTPRequest struct {
	// ID names a built-in catalog scenario.
	ID string `json:"id,omitempty"`
	// Spec is an inline scenario (the same JSON shape scenario files
	// use).
	Spec *Spec `json:"spec,omitempty"`
	// Seed overrides the base seed (default 42, as the CLI).
	Seed *uint64 `json:"seed,omitempty"`
	// Quick shrinks workloads ~10x (the CLI -quick flag).
	Quick bool `json:"quick,omitempty"`
	// Workers selects the cell worker pool (0/1 = sequential; capped
	// at GOMAXPROCS server-side).
	Workers int `json:"workers,omitempty"`
}

// HTTPResponse is the legacy POST /scenarios reply: the scenario's
// finished table. Scenarios that render custom output (figures) are
// rejected with 422 on that route; the /v1 result endpoint serves
// them as text.
type HTTPResponse struct {
	ID      string     `json:"id"`
	Kind    string     `json:"kind"`
	Seed    uint64     `json:"seed"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}
