package scenario

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
)

// HTTPRequest is the POST /scenarios body: either a catalog id or an
// inline Spec, plus invocation options. Exactly one of ID and Spec
// must be set.
type HTTPRequest struct {
	// ID names a built-in catalog scenario.
	ID string `json:"id,omitempty"`
	// Spec is an inline scenario (the same JSON shape scenario files
	// use).
	Spec *Spec `json:"spec,omitempty"`
	// Seed overrides the base seed (default 42, as the CLI).
	Seed *uint64 `json:"seed,omitempty"`
	// Quick shrinks workloads ~10x (the CLI -quick flag).
	Quick bool `json:"quick,omitempty"`
	// Workers selects the cell worker pool (0/1 = sequential).
	Workers int `json:"workers,omitempty"`
}

// HTTPResponse is the POST /scenarios reply: the scenario's table.
// Scenarios that render custom output (figures) are rejected with 422.
type HTTPResponse struct {
	ID      string     `json:"id"`
	Kind    string     `json:"kind"`
	Seed    uint64     `json:"seed"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// writeJSON mirrors the service envelope without importing it (the
// service packages mount this handler, not the other way around).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type httpError struct {
	Error string `json:"error"`
}

// maxScenarioBody bounds the POST /scenarios request body: a spec is
// a few KB of JSON, so 1 MiB is generous.
const maxScenarioBody = 1 << 20

// maxInlineJobs bounds the workload / campaign size an inline spec may
// request server-side (built-in catalog ids are trusted; paper scale
// is well under this).
const maxInlineJobs = 100_000

// scenarioSlots bounds concurrent server-side scenario runs. The
// daemon's first job is pacing live simulations; scenarios are batch
// work riding along, so at most two run at once and further requests
// get 503 instead of stacking unbounded CPU behind the DES loops.
var scenarioSlots = make(chan struct{}, 2)

// HandleRun is the POST /scenarios handler mounted by the gridd
// single-cluster service and the grid broker: it executes a scenario
// server-side and returns the resulting table as JSON. The table is
// identical cell-for-cell to what the experiments CLI prints for the
// same spec, seed and scale.
func HandleRun(w http.ResponseWriter, r *http.Request) {
	select {
	case scenarioSlots <- struct{}{}:
		defer func() { <-scenarioSlots }()
	default:
		writeJSON(w, http.StatusServiceUnavailable,
			httpError{Error: "scenario runner busy; retry later"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxScenarioBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req HTTPRequest
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad scenario request: %v", err)})
		return
	}
	var spec *Spec
	switch {
	case req.ID != "" && req.Spec != nil:
		writeJSON(w, http.StatusBadRequest, httpError{Error: "set either id or spec, not both"})
		return
	case req.ID != "":
		s, ok := Lookup(req.ID)
		if !ok {
			writeJSON(w, http.StatusNotFound, httpError{Error: fmt.Sprintf("unknown scenario %q", req.ID)})
			return
		}
		spec = s
	case req.Spec != nil:
		spec = req.Spec
		if spec.ID == "" {
			spec.ID = "adhoc"
		}
		// Bound the work an inline spec can request of a live daemon.
		// (Runners take no context yet, so an accepted run cannot be
		// cancelled — the slot limiter plus these caps keep one bad
		// request from pinning the process for long.)
		if spec.Workload != nil && spec.Workload.N > maxInlineJobs {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf(
				"inline spec requests %d jobs (max %d server-side; run it through the CLI)",
				spec.Workload.N, maxInlineJobs)})
			return
		}
		if spec.Grid != nil && spec.Grid.CampaignTasks > maxInlineJobs {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf(
				"inline spec requests %d campaign tasks (max %d server-side; run it through the CLI)",
				spec.Grid.CampaignTasks, maxInlineJobs)})
			return
		}
	default:
		writeJSON(w, http.StatusBadRequest, httpError{Error: "set id or spec"})
		return
	}
	workers := req.Workers
	if maxw := runtime.GOMAXPROCS(0); workers > maxw {
		workers = maxw
	}
	opt := RunOptions{Seed: 42, Scale: Scale{Workers: workers}}
	if req.Seed != nil {
		opt.Seed = *req.Seed
		opt.SeedExplicit = true
	}
	if req.Quick {
		opt.Scale.JobFactor = 10
	}
	res, err := Run(spec, opt)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	if res.Table == nil {
		writeJSON(w, http.StatusUnprocessableEntity,
			httpError{Error: fmt.Sprintf("scenario %q renders custom output; run it through the CLI", spec.ID)})
		return
	}
	writeJSON(w, http.StatusOK, HTTPResponse{
		ID: spec.ID, Kind: spec.Kind, Seed: res.Options.Seed,
		Title: res.Table.Title, Headers: res.Table.Headers, Rows: res.Table.Rows,
	})
}
