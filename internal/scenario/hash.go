package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CatalogHash fingerprints the registered scenario surface: the sorted
// kind names plus the canonical JSON of every built-in spec, in
// catalog order. Two binaries with equal hashes expand a spec into the
// same cells with the same defaults, so a fleet coordinator uses the
// hash (via the /v1/version build info) to refuse workers whose
// catalog diverged — merging their cells could silently mix two
// different experiments into one table.
func CatalogHash() string {
	h := sha256.New()
	for _, k := range Kinds() {
		fmt.Fprintf(h, "kind %s\n", k)
	}
	for _, s := range builtins {
		b, err := json.Marshal(s)
		if err != nil {
			// Specs are plain data and always marshal; keep the hash
			// total anyway rather than panicking in a version handler.
			fmt.Fprintf(h, "spec %s !%v\n", s.ID, err)
			continue
		}
		fmt.Fprintf(h, "spec %s %s\n", s.ID, b)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
