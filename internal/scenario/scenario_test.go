package scenario

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestBuilderAndValidate(t *testing.T) {
	s := New("demo", "offline",
		WithTitle("demo title"),
		WithDesc("a demo"),
		WithGroup(GroupTable),
		WithSeed(7),
		WithWorkload(Workload{Generator: "parallel", N: 50, M: 16, Weighted: true}),
		WithPlatform(Platform{M: 16}),
		WithPolicies("mrt", "ffdh"),
		WithMetrics("cmax_ratio", "util"),
		WithScale(Scale{JobFactor: 10}),
		WithParam("eps", 0.05),
		WithParam("ms", []int{8, 16}),
	)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Seed == nil || *s.Seed != 7 {
		t.Fatalf("seed not pinned: %v", s.Seed)
	}
	if got := s.Float("eps", 0); got != 0.05 {
		t.Fatalf("eps = %v", got)
	}
	if got := s.Ints("ms", nil); !reflect.DeepEqual(got, []int{8, 16}) {
		t.Fatalf("ms = %v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []*Spec{
		{},        // no id
		{ID: "x"}, // no kind
		{ID: "x", Kind: "k", Group: "banana"},
		{ID: "x", Kind: "k", Workload: &Workload{Generator: "quantum"}},
		{ID: "x", Kind: "k", Workload: &Workload{N: -1}},
		{ID: "x", Kind: "k", Platform: &Platform{Preset: "mars"}},
		{ID: "x", Kind: "k", Platform: &Platform{Clusters: []Cluster{{Name: "a", M: 0}}}},
		{ID: "x", Kind: "k", Params: map[string]any{"bad": struct{}{}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: invalid spec %+v passed validation", i, s)
		}
	}
}

// TestParamCoercion: the accessors must behave identically on Go-native
// values and on what encoding/json produces (float64 and []any).
func TestParamCoercion(t *testing.T) {
	native := New("p", "k",
		WithParam("n", 300),
		WithParam("eps", 0.01),
		WithParam("ms", []int{16, 64}),
		WithParam("rates", []float64{0.05, 0.5}),
		WithParam("names", []string{"a", "b"}),
		WithParam("flag", true),
		WithParam("mode", "fast"),
	)
	var buf bytes.Buffer
	if err := native.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Spec{native, decoded} {
		if got := s.Int("n", 0); got != 300 {
			t.Fatalf("Int(n) = %d", got)
		}
		if got := s.Float("eps", 0); got != 0.01 {
			t.Fatalf("Float(eps) = %v", got)
		}
		if got := s.Ints("ms", nil); !reflect.DeepEqual(got, []int{16, 64}) {
			t.Fatalf("Ints(ms) = %v", got)
		}
		if got := s.Floats("rates", nil); !reflect.DeepEqual(got, []float64{0.05, 0.5}) {
			t.Fatalf("Floats(rates) = %v", got)
		}
		if got := s.Strings("names", nil); !reflect.DeepEqual(got, []string{"a", "b"}) {
			t.Fatalf("Strings(names) = %v", got)
		}
		if !s.Bool("flag", false) {
			t.Fatal("Bool(flag) = false")
		}
		if got := s.String("mode", ""); got != "fast" {
			t.Fatalf("String(mode) = %q", got)
		}
		// Defaults on absent keys.
		if got := s.Int("missing", 42); got != 42 {
			t.Fatalf("Int default = %d", got)
		}
		if got := s.Ints("missing", []int{1}); !reflect.DeepEqual(got, []int{1}) {
			t.Fatalf("Ints default = %v", got)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"id":"x","kind":"k","wrokload":{"n":5}}`))
	if err == nil {
		t.Fatal("typo'd field accepted")
	}
}

func TestCodecRoundTripStructural(t *testing.T) {
	s := New("rt", "grid",
		WithTitle("t"),
		WithWorkload(Workload{N: 100, M: 32, ArrivalRate: 0.1, RigidFraction: 1}),
		WithPlatform(Platform{Clusters: []Cluster{{Name: "a", M: 64}, {Name: "b", M: 32, Speed: 2}}}),
		WithGrid(Grid{Policy: "centralized", CampaignTasks: 100}),
		WithPolicies("easy"),
	)
	data, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Params aside (JSON numeric widening), the structures must match.
	s2 := *got
	if !reflect.DeepEqual(s.Workload, s2.Workload) ||
		!reflect.DeepEqual(s.Platform, s2.Platform) ||
		!reflect.DeepEqual(s.Grid, s2.Grid) ||
		!reflect.DeepEqual(s.Policies, s2.Policies) ||
		s.ID != s2.ID || s.Kind != s2.Kind || s.Title != s2.Title {
		t.Fatalf("round trip mutated spec:\n  in:  %+v\n  out: %+v", s, got)
	}
	// And a second encode is byte-identical (canonical form).
	data2, err := got.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("re-encode not byte-stable:\n%s\nvs\n%s", data, data2)
	}
}

func TestRunUnknownKind(t *testing.T) {
	_, err := Run(New("x", "no-such-kind"), RunOptions{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunSeedAndScaleResolution uses a private probe kind to check the
// Spec/RunOptions merge rules.
func TestRunSeedAndScaleResolution(t *testing.T) {
	var gotSeed uint64
	var gotScale Scale
	RegisterKind("probe-kind", func(s *Spec, opt RunOptions) (*Result, error) {
		gotSeed, gotScale = opt.Seed, opt.Scale
		return TableResult(trace.NewTable("probe", "c")), nil
	})
	spec := New("probe", "probe-kind", WithSeed(99), WithScale(Scale{JobFactor: 5, Workers: 3}))

	// Spec-pinned seed wins over the default.
	if _, err := Run(spec, RunOptions{Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if gotSeed != 99 || gotScale.JobFactor != 5 || gotScale.Workers != 3 {
		t.Fatalf("got seed=%d scale=%+v", gotSeed, gotScale)
	}

	// An explicit seed and explicit scale fields win over the Spec.
	if _, err := Run(spec, RunOptions{Seed: 7, SeedExplicit: true, Scale: Scale{JobFactor: 20}}); err != nil {
		t.Fatal(err)
	}
	if gotSeed != 7 || gotScale.JobFactor != 20 || gotScale.Workers != 3 {
		t.Fatalf("got seed=%d scale=%+v", gotSeed, gotScale)
	}
}

func TestCatalogRegistration(t *testing.T) {
	Register(New("cat-test-b", "probe-kind2", WithGroup(GroupAblation)))
	Register(New("cat-test-a", "probe-kind2"))
	ids := CatalogIDs("")
	ia, ib := -1, -1
	for i, id := range ids {
		switch id {
		case "cat-test-a":
			ia = i
		case "cat-test-b":
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ib > ia {
		t.Fatalf("registration order not preserved: %v", ids)
	}
	if got, ok := Lookup("cat-test-a"); !ok || got.Group != GroupTable {
		t.Fatalf("Lookup: %+v %v (default group not applied)", got, ok)
	}
	abl := CatalogIDs(GroupAblation)
	found := false
	for _, id := range abl {
		if id == "cat-test-b" {
			found = true
		}
		if s, _ := Lookup(id); s.Group != GroupAblation {
			t.Fatalf("group filter leaked %q", id)
		}
	}
	if !found {
		t.Fatal("ablation filter missed cat-test-b")
	}
}

func TestResultEmit(t *testing.T) {
	tb := trace.NewTable("t", "a", "b")
	tb.AddRow(1, 2.5)
	var aligned, csv bytes.Buffer
	if err := TableResult(tb).Emit(&aligned, false); err != nil {
		t.Fatal(err)
	}
	if err := TableResult(tb).Emit(&csv, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(aligned.String(), "t\n") || !strings.HasPrefix(csv.String(), "a,b\n") {
		t.Fatalf("emit output wrong:\n%s\n%s", aligned.String(), csv.String())
	}
	var custom bytes.Buffer
	r := CustomResult(func(w io.Writer) error { _, err := w.Write([]byte("fig")); return err })
	if err := r.Emit(&custom, true); err != nil || custom.String() != "fig" {
		t.Fatalf("custom emit: %v %q", err, custom.String())
	}
	if err := (&Result{}).Emit(&custom, false); err == nil {
		t.Fatal("empty result emitted")
	}
}

// keep encoding/json import honest about what Decode accepts for params
func TestDecodeParams(t *testing.T) {
	s, err := Decode(strings.NewReader(`{"id":"x","kind":"k","params":{"ns":[1,2,3],"eps":0.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Ints("ns", nil); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("ns = %v", got)
	}
	var raw map[string]any
	if err := json.Unmarshal([]byte(`{"eps":0.5}`), &raw); err != nil {
		t.Fatal(err)
	}
	s.Params = raw
	if got := s.Float("eps", 0); got != 0.5 {
		t.Fatalf("eps = %v", got)
	}
}

// TestCheckParams: unknown keys and mistyped values fail loudly — the
// params mirror of the codec's unknown-field rejection.
func TestCheckParams(t *testing.T) {
	schema := map[string]ParamType{
		"ms": IntsParam, "eps": FloatParam, "kill": StringParam, "flag": BoolParam,
	}
	ok := New("ok", "k",
		WithParam("ms", []int{16, 64}),
		WithParam("eps", 0.01),
		WithParam("kill", "newest"),
		WithParam("flag", true))
	if err := ok.CheckParams(schema); err != nil {
		t.Fatal(err)
	}
	// JSON-decoded params ([]any + float64) must also pass.
	var buf bytes.Buffer
	if err := ok.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.CheckParams(schema); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		spec *Spec
	}{
		{"typo'd key", New("x", "k", WithParam("mss", []int{16}))},
		{"string for number", New("x", "k", WithParam("eps", "0.005"))},
		{"number for string", New("x", "k", WithParam("kill", 3))},
		{"scalar for list", New("x", "k", WithParam("ms", 16))},
		{"string list for number list", New("x", "k", WithParam("ms", []string{"a"}))},
		{"number for bool", New("x", "k", WithParam("flag", 1))},
	}
	for _, c := range bad {
		if err := c.spec.CheckParams(schema); err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
}

// TestCheckParamsStrictness: non-integer values for int params and
// empty lists are rejected, not silently truncated/zero-rowed.
func TestCheckParamsStrictness(t *testing.T) {
	schema := map[string]ParamType{"m": IntParam, "ms": IntsParam, "rates": FloatsParam}
	if err := New("x", "k", WithParam("m", 64.9)).CheckParams(schema); err == nil {
		t.Fatal("fractional value accepted for IntParam")
	}
	if err := New("x", "k", WithParam("ms", []float64{16.5})).CheckParams(schema); err == nil {
		t.Fatal("fractional element accepted for IntsParam")
	}
	if err := New("x", "k", WithParam("ms", []int{})).CheckParams(schema); err == nil {
		t.Fatal("empty list accepted")
	}
	if err := New("x", "k", WithParam("rates", []any{})).CheckParams(schema); err == nil {
		t.Fatal("empty []any accepted")
	}
	if err := New("x", "k", WithParam("m", 64.0)).CheckParams(schema); err != nil {
		t.Fatalf("whole float rejected: %v", err)
	}
}

// TestResultOptionsResolved: Run stamps the resolved options on the
// Result (consumers report the effective seed without re-deriving the
// precedence rules).
func TestRunResultOptionsResolved(t *testing.T) {
	RegisterKind("probe-kind3", func(s *Spec, opt RunOptions) (*Result, error) {
		return TableResult(trace.NewTable("p", "c")), nil
	})
	spec := New("probe3", "probe-kind3", WithSeed(99))
	res, err := Run(spec, RunOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Options.Seed != 99 {
		t.Fatalf("resolved seed = %d, want the spec-pinned 99", res.Options.Seed)
	}
	res, err = Run(spec, RunOptions{Seed: 7, SeedExplicit: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Options.Seed != 7 {
		t.Fatalf("resolved seed = %d, want the explicit 7", res.Options.Seed)
	}
}
