package grid

import (
	"testing"

	"repro/internal/cluster"
)

func loads4() []cluster.LoadInfo {
	return []cluster.LoadInfo{
		{M: 32, Speed: 1, Free: 4, Queued: 3, QueuedWork: 960},
		{M: 64, Speed: 1, Free: 64, Queued: 0, QueuedWork: 0},
		{M: 16, Speed: 2, Free: 0, Queued: 1, QueuedWork: 64},
		{M: 64, Speed: 0.5, Free: 10, Queued: 2, QueuedWork: 32, BEQueued: 6},
	}
}

func TestCentralizedFillGrants(t *testing.T) {
	var f CentralizedFill
	// Free-BEQueued per cluster: 4, 64, 0, 4 → stock 10 goes 4,6,0,0.
	got := f.Grants(loads4(), 10)
	want := []int{4, 6, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants %v, want %v", got, want)
		}
	}
	// Plenty of stock: every hole topped up, remainder stays central.
	got = f.Grants(loads4(), 1000)
	want = []int{4, 64, 0, 4}
	total := 0
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants %v, want %v", got, want)
		}
		total += got[i]
	}
	if total != 72 {
		t.Fatalf("granted %d", total)
	}
	if n := f.TopUp(2, 5, 100); n != 0 {
		t.Fatalf("over-queued cluster granted %d", n)
	}
}

func TestRoundRobinRouteSkipsNarrowClusters(t *testing.T) {
	r := NewCentralizedRouter(RouterOptions{})
	ld := loads4()
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		idx := r.Route(1, ld)
		if idx < 0 {
			t.Fatal("route failed")
		}
		seen[idx]++
	}
	for i := 0; i < 4; i++ {
		if seen[i] != 2 {
			t.Fatalf("round-robin distribution %v", seen)
		}
	}
	// A 48-proc job only fits clusters 1 and 3 (M=64).
	for i := 0; i < 4; i++ {
		idx := r.Route(48, ld)
		if idx != 1 && idx != 3 {
			t.Fatalf("48-proc job routed to cluster %d", idx)
		}
	}
	if idx := r.Route(100, ld); idx != -1 {
		t.Fatalf("oversized job routed to %d", idx)
	}
}

func TestLeastLoadedRoute(t *testing.T) {
	r := NewLeastLoadedRouter(RouterOptions{})
	ld := loads4()
	// Cluster 1 has zero queued work and the most free procs.
	if idx := r.Route(1, ld); idx != 1 {
		t.Fatalf("least-loaded routed to %d", idx)
	}
	// Only clusters 0,1,3 fit 20 procs; 1 still least loaded.
	if idx := r.Route(20, ld); idx != 1 {
		t.Fatalf("least-loaded 20-proc routed to %d", idx)
	}
}

func TestWeightedRandomRouteDeterministicAndEligible(t *testing.T) {
	a := NewWeightedRandomRouter(RouterOptions{Seed: 9})
	b := NewWeightedRandomRouter(RouterOptions{Seed: 9})
	ld := loads4()
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		x, y := a.Route(40, ld), b.Route(40, ld)
		if x != y {
			t.Fatalf("same seed diverged: %d vs %d at step %d", x, y, i)
		}
		if x != 1 && x != 3 {
			t.Fatalf("40-proc job routed to narrow cluster %d", x)
		}
		counts[x]++
	}
	// Capacity 64 vs 32: both must be hit, cluster 1 more often.
	if counts[1] == 0 || counts[3] == 0 || counts[1] <= counts[3] {
		t.Fatalf("weighted-random counts %v", counts)
	}
}

func TestDecentralizedRouterGrantsSpreadByCapacity(t *testing.T) {
	r := NewDecentralizedRouter(RouterOptions{})
	ld := loads4() // capacities 32, 64, 32, 32 → total 160
	got := r.Grants(ld, 160)
	want := []int{32, 64, 32, 32}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants %v, want %v", got, want)
		}
	}
	// Remainder distribution keeps the exact total.
	got = r.Grants(ld, 7)
	total := 0
	for _, n := range got {
		total += n
	}
	if total != 7 {
		t.Fatalf("grants %v sum %d, want 7", got, total)
	}
}

func TestDecentralizedRouterMoves(t *testing.T) {
	r := NewDecentralizedRouter(RouterOptions{Threshold: 1.5, MaxMove: 4})
	ld := loads4()
	moves := r.Moves(ld)
	if len(moves) != 1 {
		t.Fatalf("moves %v", moves)
	}
	// Cluster 0 has norm load 30, cluster 1 has 0: push 0 → 1.
	mv := moves[0]
	if mv.Src != 0 || mv.Dst != 1 {
		t.Fatalf("move %+v", mv)
	}
	if mv.N != 3 { // capped by the source's queue length
		t.Fatalf("move count %d", mv.N)
	}
	// Balanced fleet: no moves.
	bal := []cluster.LoadInfo{
		{M: 32, Speed: 1, Queued: 2, QueuedWork: 100},
		{M: 32, Speed: 1, Queued: 2, QueuedWork: 100},
	}
	if mv := r.Moves(bal); mv != nil {
		t.Fatalf("balanced fleet moved %v", mv)
	}
}

func TestPushPullPicks(t *testing.T) {
	if _, _, ok := PushPick([]float64{1, 1.2}, 1.5); ok {
		t.Fatal("push below threshold")
	}
	src, dst, ok := PushPick([]float64{10, 1}, 1.5)
	if !ok || src != 0 || dst != 1 {
		t.Fatalf("push pick %d→%d ok=%v", src, dst, ok)
	}
	if _, ok := PullPick([]float64{0, 0}, 1); ok {
		t.Fatal("pull with no load")
	}
	src, ok = PullPick([]float64{5, 0}, 1)
	if !ok || src != 0 {
		t.Fatalf("pull pick %d ok=%v", src, ok)
	}
}
