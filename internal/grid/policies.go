// Online grid policies: the routing decisions of the §5.2 multi-cluster
// designs, extracted into small policy types shared between the offline
// grid simulations (Centralized/Decentralized in this package) and the
// live broker of internal/gridservice. A Router sees only per-cluster
// LoadInfo snapshots, so the same decision code runs inside a
// single-threaded DES and against a fleet of concurrently running
// engines.
package grid

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// Move is one queued-job migration proposal: steal up to N waiting jobs
// from cluster Src and resubmit them on cluster Dst.
type Move struct {
	Src, Dst, N int
}

// Router is an online grid policy: it places local job submissions,
// distributes campaign (best-effort) tasks from the central stock, and
// optionally proposes periodic queue rebalancing. Implementations keep
// private state (round-robin cursors, RNGs) and are not safe for
// concurrent use — the broker serializes calls, the offline sims are
// single-threaded anyway.
type Router interface {
	Name() string
	// Route returns the index of the cluster that should receive a local
	// job needing minProcs processors, or -1 when no cluster fits.
	Route(minProcs int, loads []cluster.LoadInfo) int
	// Grants distributes up to stock campaign tasks: grants[i] tasks go
	// to cluster i this round; the rest stays in the central stock.
	Grants(loads []cluster.LoadInfo, stock int) []int
	// Moves proposes queued-job migrations for this round (nil for
	// policies without a load-exchange protocol).
	Moves(loads []cluster.LoadInfo) []Move
}

// RouterOptions tunes the routing policies (zero values select the
// defaults of the offline simulations).
type RouterOptions struct {
	// Seed drives the weighted-random router.
	Seed uint64
	// Threshold is the decentralized push imbalance ratio (default 1.5).
	Threshold float64
	// MaxMove caps migrations per exchange round (default 4).
	MaxMove int
}

func (o RouterOptions) fill() RouterOptions {
	if o.Threshold <= 1 {
		o.Threshold = 1.5
	}
	if o.MaxMove <= 0 {
		o.MaxMove = 4
	}
	return o
}

// CentralizedFill is the CiGri server's hole-filling rule: top up each
// cluster's on-site best-effort queue to at most its free capacity, in
// cluster order, keeping the remainder central so killed work can drift
// to whichever cluster has holes next.
type CentralizedFill struct{}

// TopUp returns how many stock tasks to hand one cluster with the given
// free processors and already-queued best-effort tasks.
func (CentralizedFill) TopUp(free, beQueued, stock int) int {
	n := free - beQueued
	if n > stock {
		n = stock
	}
	if n < 0 {
		n = 0
	}
	return n
}

// Grants applies TopUp across the fleet against a shared stock.
func (f CentralizedFill) Grants(loads []cluster.LoadInfo, stock int) []int {
	grants := make([]int, len(loads))
	for i, ld := range loads {
		if stock == 0 {
			break
		}
		n := f.TopUp(ld.Free, ld.BEQueued, stock)
		grants[i] = n
		stock -= n
	}
	return grants
}

// PushPick selects the (src, dst) pair for one sender-initiated transfer
// over normalized loads, or ok=false when the imbalance is below the
// threshold (the §5.2 decentralized push protocol step).
func PushPick(loads []float64, threshold float64) (src, dst int, ok bool) {
	src, dst = argmax(loads), argmin(loads)
	if src == dst || loads[src] <= threshold*math.Max(loads[dst], 1e-12) {
		return 0, 0, false
	}
	return src, dst, true
}

// PullPick selects the source an idle cluster i steals from (the
// receiver-initiated work-stealing step), or ok=false when nothing is
// worth stealing.
func PullPick(loads []float64, i int) (src int, ok bool) {
	src = argmax(loads)
	if src == i || loads[src] <= 0 {
		return 0, false
	}
	return src, true
}

// roundRobinRoute advances cursor over the clusters wide enough for the
// job; -1 when none fits.
func roundRobinRoute(cursor *int, minProcs int, loads []cluster.LoadInfo) int {
	n := len(loads)
	if n == 0 {
		return -1
	}
	for k := 0; k < n; k++ {
		i := (*cursor + k) % n
		if loads[i].M >= minProcs {
			*cursor = (i + 1) % n
			return i
		}
	}
	return -1
}

// normLoads extracts the normalized queued loads.
func normLoads(loads []cluster.LoadInfo) []float64 {
	out := make([]float64, len(loads))
	for i, ld := range loads {
		out[i] = ld.NormLoad()
	}
	return out
}

// CentralizedRouter is the online CiGri design: local jobs stay on their
// home cluster (round-robin when the submission names none) and campaign
// tasks fill scheduling holes via the central server's top-up rule.
type CentralizedRouter struct {
	fill CentralizedFill
	rr   int
}

// NewCentralizedRouter builds the online CiGri policy.
func NewCentralizedRouter(RouterOptions) Router { return &CentralizedRouter{} }

func (r *CentralizedRouter) Name() string { return "centralized" }

func (r *CentralizedRouter) Route(minProcs int, loads []cluster.LoadInfo) int {
	return roundRobinRoute(&r.rr, minProcs, loads)
}

func (r *CentralizedRouter) Grants(loads []cluster.LoadInfo, stock int) []int {
	return r.fill.Grants(loads, stock)
}

func (r *CentralizedRouter) Moves([]cluster.LoadInfo) []Move { return nil }

// DecentralizedRouter is the online §5.2 decentralized vision: jobs are
// dealt to home clusters, campaign tasks are split across the fleet by
// capacity (there is no central server to hold them), and a periodic
// push exchange migrates queued jobs from overloaded to underloaded
// clusters.
type DecentralizedRouter struct {
	opt RouterOptions
	rr  int
}

// NewDecentralizedRouter builds the online load-exchange policy.
func NewDecentralizedRouter(opt RouterOptions) Router {
	return &DecentralizedRouter{opt: opt.fill()}
}

func (r *DecentralizedRouter) Name() string { return "decentralized" }

func (r *DecentralizedRouter) Route(minProcs int, loads []cluster.LoadInfo) int {
	return roundRobinRoute(&r.rr, minProcs, loads)
}

// Grants spreads the whole stock proportionally to cluster capacity
// (largest remainder in cluster order), leaving nothing central.
func (r *DecentralizedRouter) Grants(loads []cluster.LoadInfo, stock int) []int {
	grants := make([]int, len(loads))
	if len(loads) == 0 || stock <= 0 {
		return grants
	}
	var total float64
	for _, ld := range loads {
		total += float64(ld.M) * ld.Speed
	}
	if total <= 0 {
		return grants
	}
	given := 0
	for i, ld := range loads {
		grants[i] = int(float64(stock) * float64(ld.M) * ld.Speed / total)
		given += grants[i]
	}
	for i := 0; given < stock; i = (i + 1) % len(grants) {
		grants[i]++
		given++
	}
	return grants
}

func (r *DecentralizedRouter) Moves(loads []cluster.LoadInfo) []Move {
	src, dst, ok := PushPick(normLoads(loads), r.opt.Threshold)
	if !ok {
		return nil
	}
	n := r.opt.MaxMove
	if q := loads[src].Queued; n > q {
		n = q
	}
	if n <= 0 {
		return nil
	}
	return []Move{{Src: src, Dst: dst, N: n}}
}

// LeastLoadedRouter routes every job to the cluster with the smallest
// normalized queued load (ties broken by free processors, then index);
// campaign tasks use the CiGri top-up rule.
type LeastLoadedRouter struct {
	fill CentralizedFill
}

// NewLeastLoadedRouter builds the greedy load-aware policy.
func NewLeastLoadedRouter(RouterOptions) Router { return &LeastLoadedRouter{} }

func (r *LeastLoadedRouter) Name() string { return "least-loaded" }

func (r *LeastLoadedRouter) Route(minProcs int, loads []cluster.LoadInfo) int {
	best := -1
	for i, ld := range loads {
		if ld.M < minProcs {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := loads[best]
		switch li, lb := ld.NormLoad(), b.NormLoad(); {
		case li < lb:
			best = i
		case li == lb && ld.Free > b.Free:
			best = i
		}
	}
	return best
}

func (r *LeastLoadedRouter) Grants(loads []cluster.LoadInfo, stock int) []int {
	return r.fill.Grants(loads, stock)
}

func (r *LeastLoadedRouter) Moves([]cluster.LoadInfo) []Move { return nil }

// WeightedRandomRouter routes jobs randomly with probability proportional
// to cluster capacity (M × Speed) over the clusters that fit, from a
// seeded deterministic RNG; campaign tasks use the CiGri top-up rule.
type WeightedRandomRouter struct {
	fill CentralizedFill
	rng  *stats.RNG
}

// NewWeightedRandomRouter builds the capacity-weighted random policy.
func NewWeightedRandomRouter(opt RouterOptions) Router {
	return &WeightedRandomRouter{rng: stats.NewRNG(opt.Seed)}
}

func (r *WeightedRandomRouter) Name() string { return "weighted-random" }

func (r *WeightedRandomRouter) Route(minProcs int, loads []cluster.LoadInfo) int {
	w := make([]float64, len(loads))
	any := false
	for i, ld := range loads {
		if ld.M >= minProcs {
			w[i] = float64(ld.M) * ld.Speed
			any = any || w[i] > 0
		}
	}
	if !any {
		return -1
	}
	return r.rng.Choice(w)
}

func (r *WeightedRandomRouter) Grants(loads []cluster.LoadInfo, stock int) []int {
	return r.fill.Grants(loads, stock)
}

func (r *WeightedRandomRouter) Moves([]cluster.LoadInfo) []Move { return nil }
