package grid

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// RoutedOptions tunes the offline routed-grid simulation.
type RoutedOptions struct {
	// Router options (seed, exchange threshold, max moves per round).
	Router RouterOptions
	// ExchangePeriod is the interval of the Moves rounds (virtual
	// seconds; default 60, ignored for routers that never move jobs).
	ExchangePeriod float64
}

func (o RoutedOptions) fill() RoutedOptions {
	if o.ExchangePeriod <= 0 {
		o.ExchangePeriod = 60
	}
	o.Router = o.Router.fill()
	return o
}

// RoutedStats aggregates a routed run.
type RoutedStats struct {
	// Routed and Rejected count local-job placements.
	Routed, Rejected int
	// Migrations counts queued jobs moved by exchange rounds.
	Migrations int
	// Campaign accounting, mirroring CentralizedStats.
	TasksCompleted, TasksKilled int
	DoneWork, WastedWork        float64
	GridMakespan                float64
	PerCluster                  []cluster.BEStats
}

// Routed is the offline twin of the live broker: one DES, k member
// clusters, and a grid Router deciding — with exactly the code the
// broker runs — where each arriving job goes, how the campaign stock
// fans out, and which queued jobs migrate. It exists so the online grid
// policies can be swept deterministically in the paper tables.
type Routed struct {
	DES    *des.Simulator
	sims   []*cluster.Sim
	router Router
	opt    RoutedOptions
	stock  []cluster.BETask
	stats  RoutedStats
	nLocal int

	redistributePending bool
}

// NewRouted wires the routed grid: members supply the platforms and
// local queue policies (their Local job lists are ignored — routing is
// the router's job), jobs is the single arrival stream, bags the
// campaign load.
func NewRouted(members []Member, jobs []*workload.Job, bags []*workload.Bag, router Router, opt RoutedOptions, kill cluster.KillPolicy) (*Routed, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("grid: no members")
	}
	if router == nil {
		return nil, fmt.Errorf("grid: nil router")
	}
	opt = opt.fill()
	sim := des.NewWithCapacity(len(jobs) + 64)
	r := &Routed{DES: sim, router: router, opt: opt}
	for _, mb := range members {
		if err := mb.Cluster.Validate(); err != nil {
			return nil, err
		}
		cs, err := cluster.New(sim, mb.Cluster.Procs(), mb.Cluster.Speed, mb.Policy, kill)
		if err != nil {
			return nil, err
		}
		cs.OnBEKilled = func(t cluster.BETask) { r.requeue(t) }
		cs.OnBEDone = func(t cluster.BETask) { r.taskDone(t) }
		r.sims = append(r.sims, cs)
	}
	// Each job arrives at its release date and is routed against the
	// fleet's live load at that instant — the broker's Submit path.
	for _, j := range jobs {
		job := j
		if err := sim.At(job.Release, func() { r.place(job) }); err != nil {
			return nil, err
		}
	}
	for _, b := range bags {
		for i := 0; i < b.Runs; i++ {
			r.stock = append(r.stock, cluster.BETask{BagID: b.ID, Index: i, Duration: b.RunTime})
		}
	}
	_ = sim.At(0, r.redistribute)
	// Exchange rounds are armed for every router; routers without a
	// protocol return no moves and the round re-arms only while events
	// remain, so the no-op rounds cost nothing once the grid drains.
	_ = sim.At(opt.ExchangePeriod, r.exchange)
	return r, nil
}

// loads builds the exact fleet load vector (single-threaded, so no
// staleness — the broker reads the same fields via LoadSnapshot).
func (r *Routed) loads() []cluster.LoadInfo {
	out := make([]cluster.LoadInfo, len(r.sims))
	for i, cs := range r.sims {
		out[i] = cluster.LoadInfo{
			M: cs.M, Speed: cs.Speed, Free: cs.Free(),
			Queued: cs.QueueLength(), QueuedWork: cs.QueuedWork(),
			BEQueued: cs.BestEffortQueueLength(), BEActive: cs.BestEffortActive(),
		}
	}
	return out
}

// place routes one arriving job.
func (r *Routed) place(j *workload.Job) {
	idx := r.router.Route(j.MinProcs, r.loads())
	if idx < 0 {
		r.stats.Rejected++
		return
	}
	if err := r.sims[idx].InjectNow(j); err != nil {
		r.stats.Rejected++
		return
	}
	r.stats.Routed++
	r.nLocal++
}

// requeue returns a killed campaign task to the stock.
func (r *Routed) requeue(t cluster.BETask) {
	r.stats.TasksKilled++
	r.stock = append(r.stock, t)
	r.scheduleRedistribute()
}

func (r *Routed) taskDone(t cluster.BETask) {
	r.stats.TasksCompleted++
	r.stats.DoneWork += t.Duration
	if now := r.DES.Now(); now > r.stats.GridMakespan {
		r.stats.GridMakespan = now
	}
	r.scheduleRedistribute()
}

// scheduleRedistribute coalesces redistribution wakeups (kills and
// completions arrive in bursts).
func (r *Routed) scheduleRedistribute() {
	if r.redistributePending || len(r.stock) == 0 {
		return
	}
	r.redistributePending = true
	_ = r.DES.After(0, func() {
		r.redistributePending = false
		r.redistribute()
	})
}

// redistribute grants stock tasks per the router's fill rule.
func (r *Routed) redistribute() {
	if len(r.stock) == 0 {
		return
	}
	grants := r.router.Grants(r.loads(), len(r.stock))
	for i, n := range grants {
		for ; n > 0 && len(r.stock) > 0; n-- {
			t := r.stock[0]
			r.stock = r.stock[1:]
			r.sims[i].SubmitBestEffort(t)
		}
	}
}

// exchange runs one Moves round and re-arms while the grid is alive.
func (r *Routed) exchange() {
	for _, mv := range r.router.Moves(r.loads()) {
		if mv.Src == mv.Dst || mv.Src < 0 || mv.Dst < 0 ||
			mv.Src >= len(r.sims) || mv.Dst >= len(r.sims) {
			continue
		}
		for _, j := range r.sims[mv.Src].StealQueued(mv.N) {
			dst := mv.Dst
			if j.MinProcs > r.sims[dst].M {
				dst = mv.Src // does not fit; back home
			}
			if err := r.sims[dst].InjectNow(j); err != nil {
				_ = r.sims[mv.Src].InjectNow(j)
				continue
			}
			if dst == mv.Dst {
				r.stats.Migrations++
			}
		}
	}
	if r.DES.Pending() > 0 {
		_ = r.DES.At(r.DES.Now()+r.opt.ExchangePeriod, r.exchange)
	}
}

// Run drives the routed grid to completion: all routed jobs and all
// campaign tasks done.
func (r *Routed) Run() error {
	for {
		if err := r.DES.Run(); err != nil {
			return err
		}
		if len(r.stock) == 0 {
			break
		}
		before := len(r.stock)
		r.redistribute()
		if r.DES.Pending() == 0 && len(r.stock) == before {
			return fmt.Errorf("grid: %d tasks stuck in routed stock", len(r.stock))
		}
	}
	for _, cs := range r.sims {
		st := cs.BestEffort()
		r.stats.PerCluster = append(r.stats.PerCluster, st)
		r.stats.WastedWork += st.WastedWork
	}
	return nil
}

// Stats returns the aggregated statistics (valid after Run).
func (r *Routed) Stats() RoutedStats { return r.stats }

// AllCompletions merges every cluster's local completion records.
func (r *Routed) AllCompletions() []metrics.Completion {
	var all []metrics.Completion
	for _, cs := range r.sims {
		all = append(all, cs.Completions()...)
	}
	return all
}

// LocalCompletions returns cluster i's completion records.
func (r *Routed) LocalCompletions(i int) []metrics.Completion {
	return r.sims[i].Completions()
}
