package grid

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// RoutedOptions tunes the offline routed-grid simulation.
type RoutedOptions struct {
	// Router options (seed, exchange threshold, max moves per round).
	Router RouterOptions
	// ExchangePeriod is the interval of the Moves rounds (virtual
	// seconds; default 60, ignored for routers that never move jobs).
	ExchangePeriod float64
}

func (o RoutedOptions) fill() RoutedOptions {
	if o.ExchangePeriod <= 0 {
		o.ExchangePeriod = 60
	}
	o.Router = o.Router.fill()
	return o
}

// RoutedStats aggregates a routed run.
type RoutedStats struct {
	// Routed and Rejected count local-job placements.
	Routed, Rejected int
	// Migrations counts queued jobs moved by exchange rounds.
	Migrations int
	// Campaign accounting, mirroring CentralizedStats.
	TasksCompleted, TasksKilled int
	DoneWork, WastedWork        float64
	GridMakespan                float64
	PerCluster                  []cluster.BEStats
}

// Routed is the offline twin of the live broker: one DES, k member
// clusters, and a grid Router deciding — with exactly the code the
// broker runs — where each arriving job goes, how the campaign stock
// fans out, and which queued jobs migrate. It exists so the online grid
// policies can be swept deterministically in the paper tables.
type Routed struct {
	DES        *des.Simulator
	sims       []*cluster.Sim
	router     Router
	opt        RoutedOptions
	stock      []cluster.BETask
	stats      RoutedStats
	nLocal     int
	partitions []scenario.PartitionWindow

	// OnMigrate, when set, observes every exchange-round migration: job
	// j moved from cluster src to cluster dst at virtual time now. Nil
	// by default — the batch tables pay nothing for it.
	OnMigrate func(j *workload.Job, src, dst int, now float64)

	redistributePending bool
}

// NewRouted wires the routed grid: members supply the platforms and
// local queue policies (their Local job lists are ignored — routing is
// the router's job), jobs is the single arrival stream, bags the
// campaign load.
func NewRouted(members []Member, jobs []*workload.Job, bags []*workload.Bag, router Router, opt RoutedOptions, kill cluster.KillPolicy) (*Routed, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("grid: no members")
	}
	if router == nil {
		return nil, fmt.Errorf("grid: nil router")
	}
	opt = opt.fill()
	sim := des.NewWithCapacity(len(jobs) + 64)
	r := &Routed{DES: sim, router: router, opt: opt}
	for _, mb := range members {
		if err := mb.Cluster.Validate(); err != nil {
			return nil, err
		}
		cs, err := cluster.New(sim, mb.Cluster.Procs(), mb.Cluster.Speed, mb.Policy, kill)
		if err != nil {
			return nil, err
		}
		cs.OnBEKilled = func(t cluster.BETask) { r.requeue(t) }
		cs.OnBEDone = func(t cluster.BETask) { r.taskDone(t) }
		r.sims = append(r.sims, cs)
	}
	// Each job arrives at its release date and is routed against the
	// fleet's live load at that instant — the broker's Submit path.
	for _, j := range jobs {
		job := j
		if err := sim.At(job.Release, func() { r.place(job) }); err != nil {
			return nil, err
		}
	}
	for _, b := range bags {
		for i := 0; i < b.Runs; i++ {
			r.stock = append(r.stock, cluster.BETask{BagID: b.ID, Index: i, Duration: b.RunTime})
		}
	}
	_ = sim.At(0, r.redistribute)
	// Exchange rounds are armed for every router; routers without a
	// protocol return no moves and the round re-arms only while events
	// remain, so the no-op rounds cost nothing once the grid drains.
	_ = sim.At(opt.ExchangePeriod, r.exchange)
	return r, nil
}

// loads builds the exact fleet load vector (single-threaded, so no
// staleness — the broker reads the same fields via LoadSnapshot).
// Clusters behind an open partition window are masked to a zero
// LoadInfo so every router skips them: no placements, no grants, no
// migrations reach a partitioned cluster. Work already on the cluster
// keeps running — a partition cuts scheduling traffic, not execution.
func (r *Routed) loads() []cluster.LoadInfo {
	now := r.DES.Now()
	out := make([]cluster.LoadInfo, len(r.sims))
	for i, cs := range r.sims {
		if r.partitioned(i, now) {
			continue
		}
		out[i] = cluster.LoadInfo{
			M: cs.M, Speed: cs.Speed, Free: cs.Free(),
			Queued: cs.QueueLength(), QueuedWork: cs.QueuedWork(),
			BEQueued: cs.BestEffortQueueLength(), BEActive: cs.BestEffortActive(),
		}
	}
	return out
}

// SetPartitions installs the broker-link partition windows. Must be
// called before Run; each window's close is armed as a redistribution
// wakeup so stock stranded during a blackout is re-delivered the
// instant a cluster becomes reachable again.
func (r *Routed) SetPartitions(windows []scenario.PartitionWindow) {
	r.partitions = windows
	for _, w := range windows {
		_ = r.DES.At(w.End, r.scheduleRedistribute)
	}
}

// partitioned reports whether cluster i is cut off at virtual time now.
func (r *Routed) partitioned(i int, now float64) bool {
	for _, w := range r.partitions {
		if now < w.Start || now >= w.End {
			continue
		}
		for _, c := range w.Clusters {
			if c == i {
				return true
			}
		}
	}
	return false
}

// place routes one arriving job.
func (r *Routed) place(j *workload.Job) {
	idx := r.router.Route(j.MinProcs, r.loads())
	if idx < 0 {
		r.stats.Rejected++
		return
	}
	if err := r.sims[idx].InjectNow(j); err != nil {
		r.stats.Rejected++
		return
	}
	r.stats.Routed++
	r.nLocal++
}

// requeue returns a killed campaign task to the stock.
func (r *Routed) requeue(t cluster.BETask) {
	r.stats.TasksKilled++
	r.stock = append(r.stock, t)
	r.scheduleRedistribute()
}

func (r *Routed) taskDone(t cluster.BETask) {
	r.stats.TasksCompleted++
	r.stats.DoneWork += t.Duration
	if now := r.DES.Now(); now > r.stats.GridMakespan {
		r.stats.GridMakespan = now
	}
	r.scheduleRedistribute()
}

// scheduleRedistribute coalesces redistribution wakeups (kills and
// completions arrive in bursts).
func (r *Routed) scheduleRedistribute() {
	if r.redistributePending || len(r.stock) == 0 {
		return
	}
	r.redistributePending = true
	_ = r.DES.After(0, func() {
		r.redistributePending = false
		r.redistribute()
	})
}

// redistribute grants stock tasks per the router's fill rule.
// Partitioned clusters are skipped even when the router's remainder
// arithmetic grants them tasks (their loads are masked, but e.g. the
// decentralized largest-remainder loop spreads over every index); the
// skipped tasks stay in the central stock.
func (r *Routed) redistribute() {
	if len(r.stock) == 0 {
		return
	}
	now := r.DES.Now()
	grants := r.router.Grants(r.loads(), len(r.stock))
	for i, n := range grants {
		if r.partitioned(i, now) {
			continue
		}
		for ; n > 0 && len(r.stock) > 0; n-- {
			t := r.stock[0]
			r.stock = r.stock[1:]
			r.sims[i].SubmitBestEffort(t)
		}
	}
}

// exchange runs one Moves round and re-arms while the grid is alive.
// Moves touching a partitioned cluster are dropped for the round: the
// masked loads keep senders quiet, but an idle partitioned cluster can
// still surface as the argmin destination.
func (r *Routed) exchange() {
	now := r.DES.Now()
	for _, mv := range r.router.Moves(r.loads()) {
		if mv.Src == mv.Dst || mv.Src < 0 || mv.Dst < 0 ||
			mv.Src >= len(r.sims) || mv.Dst >= len(r.sims) ||
			r.partitioned(mv.Src, now) || r.partitioned(mv.Dst, now) {
			continue
		}
		for _, j := range r.sims[mv.Src].StealQueued(mv.N) {
			dst := mv.Dst
			if j.MinProcs > r.sims[dst].M {
				dst = mv.Src // does not fit; back home
			}
			if err := r.sims[dst].InjectNow(j); err != nil {
				_ = r.sims[mv.Src].InjectNow(j)
				continue
			}
			if dst == mv.Dst {
				r.stats.Migrations++
				if r.OnMigrate != nil {
					r.OnMigrate(j, mv.Src, dst, now)
				}
			}
		}
	}
	if r.DES.Pending() > 0 {
		_ = r.DES.At(r.DES.Now()+r.opt.ExchangePeriod, r.exchange)
	}
}

// Run drives the routed grid to completion: all routed jobs and all
// campaign tasks done.
func (r *Routed) Run() error {
	for {
		if err := r.DES.Run(); err != nil {
			return err
		}
		if len(r.stock) == 0 {
			break
		}
		before := len(r.stock)
		r.redistribute()
		if r.DES.Pending() == 0 && len(r.stock) == before {
			return fmt.Errorf("grid: %d tasks stuck in routed stock", len(r.stock))
		}
	}
	for _, cs := range r.sims {
		st := cs.BestEffort()
		r.stats.PerCluster = append(r.stats.PerCluster, st)
		r.stats.WastedWork += st.WastedWork
	}
	return nil
}

// Stats returns the aggregated statistics (valid after Run).
func (r *Routed) Stats() RoutedStats { return r.stats }

// Sim exposes member cluster i's simulation (fault engines attach to
// it before Run; determinism tests compare it to the live broker).
func (r *Routed) Sim(i int) *cluster.Sim { return r.sims[i] }

// AllCompletions merges every cluster's local completion records.
func (r *Routed) AllCompletions() []metrics.Completion {
	var all []metrics.Completion
	for _, cs := range r.sims {
		all = append(all, cs.Completions()...)
	}
	return all
}

// LocalCompletions returns cluster i's completion records.
func (r *Routed) LocalCompletions(i int) []metrics.Completion {
	return r.sims[i].Completions()
}
