package grid

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workload"
)

func routedMembers() []Member {
	var ms []Member
	for i, m := range []int{8, 4, 8} {
		ms = append(ms, Member{
			Cluster: &platform.Cluster{Name: string(rune('a' + i)), Nodes: m, ProcsPerNode: 1, Speed: 1},
			Policy:  cluster.EASYPolicy{},
		})
	}
	return ms
}

// TestRoutedCompletesUnderEveryRouter runs the broker's offline twin
// with each routing policy: every routed job and every campaign task
// must complete, regardless of the placement rule.
func TestRoutedCompletesUnderEveryRouter(t *testing.T) {
	routers := map[string]func(RouterOptions) Router{
		"centralized":     NewCentralizedRouter,
		"decentralized":   NewDecentralizedRouter,
		"least-loaded":    NewLeastLoadedRouter,
		"weighted-random": NewWeightedRandomRouter,
	}
	for name, mk := range routers {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			rng := stats.NewRNG(17)
			var jobs []*workload.Job
			clock := 0.0
			for i := 0; i < 60; i++ {
				clock += rng.Exp(0.4)
				jobs = append(jobs, rjob(i, rng.Range(5, 30), rng.IntRange(1, 6), clock))
			}
			bags := []*workload.Bag{{ID: 0, Runs: 120, RunTime: 4, Name: "bag"}}
			r, err := NewRouted(routedMembers(), jobs, bags, mk(RouterOptions{Seed: 2}),
				RoutedOptions{ExchangePeriod: 10}, cluster.KillNewest)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			st := r.Stats()
			if st.Routed != 60 || st.Rejected != 0 {
				t.Fatalf("routed %d, rejected %d", st.Routed, st.Rejected)
			}
			if got := len(r.AllCompletions()); got != 60 {
				t.Fatalf("%d local completions", got)
			}
			if st.TasksCompleted != 120 {
				t.Fatalf("campaign completed %d of 120", st.TasksCompleted)
			}
		})
	}
}

// TestRoutedSkipsNarrowCluster: 6-proc jobs must never land on the
// 4-proc cluster, under any router.
func TestRoutedWideJobsAvoidNarrowCluster(t *testing.T) {
	var jobs []*workload.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, rjob(i, 10, 6, float64(i)))
	}
	r, err := NewRouted(routedMembers(), jobs, nil, NewCentralizedRouter(RouterOptions{}),
		RoutedOptions{}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(r.LocalCompletions(1)); got != 0 {
		t.Fatalf("narrow cluster ran %d wide jobs", got)
	}
	if got := len(r.AllCompletions()); got != 12 {
		t.Fatalf("%d of 12 completed", got)
	}
}

// TestRoutedRejectsOversized: jobs wider than every cluster are counted
// as rejected, not lost silently.
func TestRoutedRejectsOversized(t *testing.T) {
	jobs := []*workload.Job{rjob(0, 5, 32, 0), rjob(1, 5, 2, 0)}
	r, err := NewRouted(routedMembers(), jobs, nil, NewLeastLoadedRouter(RouterOptions{}),
		RoutedOptions{}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Routed != 1 || st.Rejected != 1 {
		t.Fatalf("routed %d rejected %d", st.Routed, st.Rejected)
	}
}

// TestRoutedPartitionMasksCluster: a cluster behind an open partition
// window receives no campaign grants; the rest of the fleet absorbs
// the stock and the run still completes everything.
func TestRoutedPartitionMasksCluster(t *testing.T) {
	bags := []*workload.Bag{{ID: 0, Runs: 60, RunTime: 4, Name: "bag"}}
	r, err := NewRouted(routedMembers(), nil, bags, NewCentralizedRouter(RouterOptions{}),
		RoutedOptions{ExchangePeriod: 10}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0 is cut for far longer than the fleet needs to drain the
	// campaign on the remaining 12 processors.
	r.SetPartitions([]scenario.PartitionWindow{{Start: 0, End: 500, Clusters: []int{0}}})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.TasksCompleted != 60 {
		t.Fatalf("campaign completed %d of 60", st.TasksCompleted)
	}
	if got := r.Sim(0).BestEffort().Completed; got != 0 {
		t.Fatalf("partitioned cluster completed %d tasks", got)
	}
}

// TestRoutedFullPartitionRedelivers: with every cluster cut, the stock
// is stranded until the window closes; the wakeup armed by
// SetPartitions must redeliver it rather than trip the stuck-stock
// error, so the whole campaign lands after the blackout lifts.
func TestRoutedFullPartitionRedelivers(t *testing.T) {
	bags := []*workload.Bag{{ID: 0, Runs: 40, RunTime: 3, Name: "bag"}}
	r, err := NewRouted(routedMembers(), nil, bags, NewCentralizedRouter(RouterOptions{}),
		RoutedOptions{ExchangePeriod: 10}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	r.SetPartitions([]scenario.PartitionWindow{{Start: 0, End: 50, Clusters: []int{0, 1, 2}}})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.TasksCompleted != 40 {
		t.Fatalf("campaign completed %d of 40", st.TasksCompleted)
	}
	if st.GridMakespan <= 50 {
		t.Fatalf("grid makespan %v, want after the blackout lifts at 50", st.GridMakespan)
	}
}

// TestRoutedPartitionWindowCloses: jobs released inside a partial
// partition window route around the cut cluster; jobs released after
// it may use the whole fleet again.
func TestRoutedPartitionWindowCloses(t *testing.T) {
	var jobs []*workload.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, rjob(i, 10, 6, float64(i))) // during window: only cluster c fits
	}
	for i := 8; i < 16; i++ {
		jobs = append(jobs, rjob(i, 10, 6, 100+float64(i))) // after window
	}
	r2, err := NewRouted(routedMembers(), jobs, nil, NewLeastLoadedRouter(RouterOptions{}),
		RoutedOptions{}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	r2.SetPartitions([]scenario.PartitionWindow{{Start: 0, End: 50, Clusters: []int{0}}})
	if err := r2.Run(); err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Routed != 16 || st.Rejected != 0 {
		t.Fatalf("routed %d, rejected %d", st.Routed, st.Rejected)
	}
	for _, c := range r2.LocalCompletions(0) {
		if c.Start < 50 {
			t.Fatalf("partitioned cluster started job %d at %v inside the window", c.Job.ID, c.Start)
		}
	}
	if got := len(r2.LocalCompletions(0)); got == 0 {
		t.Fatal("cluster 0 never rejoined the fleet after the window closed")
	}
	if got := len(r2.AllCompletions()); got != 16 {
		t.Fatalf("%d of 16 completed", got)
	}
}

// TestRoutedDecentralizedMigrates: skewed home routing plus the
// decentralized router must trigger migrations through the shared Moves
// path.
func TestRoutedDecentralizedMigrates(t *testing.T) {
	// The round-robin home routing is bypassed: all jobs released at
	// distinct times but every cluster same size, so RR spreads them.
	// To force skew, use one wide stream of 1-proc jobs with bursty
	// arrivals — RR still spreads, so instead make clusters 0 the only
	// initial target by sizing: narrow clusters can't take 6-proc jobs.
	var jobs []*workload.Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, rjob(i, 30, 6, 0)) // only clusters a and c fit
	}
	r, err := NewRouted(routedMembers(), jobs, nil,
		NewDecentralizedRouter(RouterOptions{Threshold: 1.1, MaxMove: 4}),
		RoutedOptions{ExchangePeriod: 5}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(r.AllCompletions()); got != 40 {
		t.Fatalf("%d of 40 completed", got)
	}
	if got := len(r.LocalCompletions(1)); got != 0 {
		t.Fatalf("narrow cluster ran %d wide jobs after exchange", got)
	}
}
