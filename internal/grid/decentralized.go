package grid

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Protocol selects who initiates a work transfer.
type Protocol int

const (
	// Push is sender-initiated: the most loaded cluster offloads to the
	// least loaded when the imbalance exceeds the threshold.
	Push Protocol = iota
	// Pull is receiver-initiated (work stealing, in the spirit of the
	// paper's [3]): clusters with an empty queue and free processors
	// steal from the most loaded cluster regardless of the ratio.
	Pull
)

// DecentralizedOptions tunes the load-exchange protocol.
type DecentralizedOptions struct {
	// Period is the exchange interval (virtual seconds).
	Period float64
	// Threshold is the queued-work imbalance ratio that triggers a
	// migration (source load > Threshold × target load). Push only.
	Threshold float64
	// MaxMove caps jobs moved per exchange round per pair.
	MaxMove int
	// Horizon stops the periodic exchange (safety; 0 = run until all
	// local work done, with the exchange rearmed only while jobs wait).
	Horizon float64
	// Protocol selects sender-initiated (Push, default) or
	// receiver-initiated (Pull) transfers.
	Protocol Protocol
}

func (o DecentralizedOptions) fill() DecentralizedOptions {
	if o.Period <= 0 {
		o.Period = 60
	}
	if o.Threshold <= 1 {
		o.Threshold = 1.5
	}
	if o.MaxMove <= 0 {
		o.MaxMove = 4
	}
	return o
}

// DecentralizedStats reports an exchange run.
type DecentralizedStats struct {
	Migrations int
	Rounds     int
}

// Decentralized simulates the §5.2 decentralized vision: every job is
// submitted locally; schedulers periodically compare queued work and move
// waiting jobs from overloaded to underloaded clusters (a simple
// threshold protocol standing in for the paper's open design space —
// graph coupling, economic models, consensus, ...).
type Decentralized struct {
	DES   *des.Simulator
	sims  []*cluster.Sim
	opt   DecentralizedOptions
	stats DecentralizedStats
	done  bool
}

// NewDecentralized wires the members; exchange starts at t=Period.
func NewDecentralized(members []Member, opt DecentralizedOptions, kill cluster.KillPolicy) (*Decentralized, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("grid: no members")
	}
	opt = opt.fill()
	sim := des.New()
	d := &Decentralized{DES: sim, opt: opt}
	for _, mb := range members {
		if err := mb.Cluster.Validate(); err != nil {
			return nil, err
		}
		cs, err := cluster.New(sim, mb.Cluster.Procs(), mb.Cluster.Speed, mb.Policy, kill)
		if err != nil {
			return nil, err
		}
		for _, j := range mb.Local {
			if err := cs.Submit(j); err != nil {
				return nil, err
			}
		}
		d.sims = append(d.sims, cs)
	}
	_ = sim.At(opt.Period, d.exchange)
	return d, nil
}

// exchange runs one balancing round and re-arms itself while work waits.
func (d *Decentralized) exchange() {
	d.stats.Rounds++
	// Normalized load: queued work / (procs × speed) — time to drain.
	load := make([]float64, len(d.sims))
	for i, cs := range d.sims {
		load[i] = cs.QueuedWork() / (float64(cs.M) * cs.Speed)
	}
	switch d.opt.Protocol {
	case Pull:
		// Every idle cluster (empty queue, free processors) steals up to
		// MaxMove jobs from the currently most loaded cluster.
		for i, cs := range d.sims {
			if cs.QueueLength() > 0 || cs.Free() == 0 {
				continue
			}
			for moved := 0; moved < d.opt.MaxMove; moved++ {
				src, ok := PullPick(load, i)
				if !ok {
					break
				}
				if !d.moveOne(src, i, load) {
					break
				}
			}
		}
	default: // Push: repeatedly move from the most to the least loaded.
		for moved := 0; moved < d.opt.MaxMove; moved++ {
			src, dst, ok := PushPick(load, d.opt.Threshold)
			if !ok {
				break
			}
			if !d.moveOne(src, dst, load) {
				break
			}
		}
	}
	// Re-arm while the grid is still alive: our own event has already
	// been popped, so a non-empty DES queue means arrivals or
	// completions are still outstanding somewhere.
	next := d.DES.Now() + d.opt.Period
	if d.opt.Horizon > 0 && next > d.opt.Horizon {
		return
	}
	if d.DES.Pending() > 0 {
		_ = d.DES.At(next, d.exchange)
	}
}

// moveOne steals one queued job from src that fits dst and injects it.
func (d *Decentralized) moveOne(src, dst int, load []float64) bool {
	stolen := d.sims[src].StealQueued(1)
	if len(stolen) == 0 {
		return false
	}
	j := stolen[0]
	if j.MinProcs > d.sims[dst].M {
		// Does not fit the target; put it back.
		if err := d.sims[src].InjectNow(j); err != nil {
			return false
		}
		return false
	}
	if err := d.sims[dst].InjectNow(j); err != nil {
		_ = d.sims[src].InjectNow(j)
		return false
	}
	d.stats.Migrations++
	w, _ := j.MinWork(d.sims[src].M)
	load[src] -= w / (float64(d.sims[src].M) * d.sims[src].Speed)
	load[dst] += w / (float64(d.sims[dst].M) * d.sims[dst].Speed)
	return true
}

// Run drives the grid to completion.
func (d *Decentralized) Run() error {
	if err := d.DES.Run(); err != nil {
		return err
	}
	d.done = true
	return nil
}

// Stats returns exchange statistics (valid after Run).
func (d *Decentralized) Stats() DecentralizedStats { return d.stats }

// LocalCompletions returns cluster i's completion records.
func (d *Decentralized) LocalCompletions(i int) []metrics.Completion {
	return d.sims[i].Completions()
}

// AllCompletions merges every cluster's records.
func (d *Decentralized) AllCompletions() []metrics.Completion {
	var all []metrics.Completion
	for _, cs := range d.sims {
		all = append(all, cs.Completions()...)
	}
	return all
}

// RunIsolated runs the same members with no exchange at all (the
// baseline: communities keep their machines to themselves) and returns
// the merged completion records.
func RunIsolated(members []Member, kill cluster.KillPolicy) ([]metrics.Completion, error) {
	var all []metrics.Completion
	for _, mb := range members {
		sim := des.New()
		cs, err := cluster.New(sim, mb.Cluster.Procs(), mb.Cluster.Speed, mb.Policy, kill)
		if err != nil {
			return nil, err
		}
		for _, j := range mb.Local {
			if err := cs.Submit(j); err != nil {
				return nil, err
			}
		}
		if err := cs.Run(); err != nil {
			return nil, err
		}
		all = append(all, cs.Completions()...)
	}
	return all, nil
}

// SplitJobsRoundRobin deals a job stream across k members (test/demo
// helper for building imbalanced scenarios use SplitJobsSkewed).
func SplitJobsRoundRobin(jobs []*workload.Job, k int) [][]*workload.Job {
	out := make([][]*workload.Job, k)
	for i, j := range jobs {
		out[i%k] = append(out[i%k], j)
	}
	return out
}

// SplitJobsSkewed sends the given fraction of the stream to member 0 and
// deals the rest round-robin over the others — the §5.2 imbalance
// scenario (one community floods its own cluster).
func SplitJobsSkewed(jobs []*workload.Job, k int, frac float64) [][]*workload.Job {
	out := make([][]*workload.Job, k)
	if k == 1 {
		out[0] = jobs
		return out
	}
	cut := int(frac * float64(len(jobs)))
	for i, j := range jobs {
		if i < cut {
			out[0] = append(out[0], j)
		} else {
			out[1+(i-cut)%(k-1)] = append(out[1+(i-cut)%(k-1)], j)
		}
	}
	return out
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
