// Package grid implements the two multi-cluster designs of §5.2 of the
// paper on top of the cluster simulator:
//
//   - Centralized (the CiGri system as deployed in Grenoble): each
//     cluster keeps its own submission system for local jobs; a central
//     server holds the multi-parametric grid campaigns and feeds their
//     elementary tasks into scheduling holes as best-effort jobs. A
//     best-effort task whose processor is claimed by a local job is
//     killed and resubmitted by the server. Local users are never
//     delayed by grid work.
//
//   - Decentralized: all jobs are local, but neighbouring schedulers
//     periodically exchange queued work to balance load.
package grid

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Member is one cluster of the grid together with its local workload.
type Member struct {
	Cluster *platform.Cluster
	Policy  cluster.Policy
	Local   []*workload.Job
}

// CentralizedStats aggregates a centralized run.
type CentralizedStats struct {
	// TasksCompleted counts elementary grid tasks that finished.
	TasksCompleted int
	// TasksKilled counts kill events (a task may die several times).
	TasksKilled int
	// Resubmissions equals TasksKilled (every kill triggers one).
	Resubmissions int
	// DoneWork and WastedWork are reference-speed grid work completed /
	// lost to kills.
	DoneWork, WastedWork float64
	// GridMakespan is when the last grid task finished (0 if none ran).
	GridMakespan float64
	// PerCluster reports each cluster's best-effort stats.
	PerCluster []cluster.BEStats
}

// Centralized simulates the CiGri design. Its placement decisions come
// from the shared CentralizedFill policy, the same code the live broker
// of internal/gridservice runs against a fleet of engines.
type Centralized struct {
	DES      *des.Simulator
	sims     []*cluster.Sim
	fill     CentralizedFill
	stock    []cluster.BETask // central queue of not-yet-placed tasks
	inFlight int
	stats    CentralizedStats
	members  []Member
	// redistributePending coalesces the zero-delay redistribution wakeups
	// that kills and completions trigger in bursts.
	redistributePending bool
}

// NewCentralized wires the grid: one simulator per member plus the
// central server holding the campaigns.
func NewCentralized(members []Member, bags []*workload.Bag, kill cluster.KillPolicy) (*Centralized, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("grid: no members")
	}
	nLocal := 0
	for _, mb := range members {
		nLocal += len(mb.Local)
	}
	sim := des.NewWithCapacity(nLocal + 64)
	c := &Centralized{DES: sim, members: members}
	for i, mb := range members {
		if err := mb.Cluster.Validate(); err != nil {
			return nil, err
		}
		cs, err := cluster.New(sim, mb.Cluster.Procs(), mb.Cluster.Speed, mb.Policy, kill)
		if err != nil {
			return nil, err
		}
		idx := i
		cs.OnIdle = func(free int) { c.feed(idx, free) }
		cs.OnBEKilled = func(t cluster.BETask) { c.requeue(t) }
		cs.OnBEDone = func(t cluster.BETask) { c.taskDone(t) }
		for _, j := range mb.Local {
			if err := cs.Submit(j); err != nil {
				return nil, err
			}
		}
		c.sims = append(c.sims, cs)
	}
	// Flatten the campaigns into the central stock, round-robin across
	// bags so every campaign progresses.
	maxRuns := 0
	for _, b := range bags {
		if b.Runs > maxRuns {
			maxRuns = b.Runs
		}
	}
	for r := 0; r < maxRuns; r++ {
		for _, b := range bags {
			if r < b.Runs {
				c.stock = append(c.stock, cluster.BETask{BagID: b.ID, Index: r, Duration: b.RunTime})
			}
		}
	}
	// Prime the pumps: initial feed once the simulation starts.
	_ = sim.At(0, func() {
		for i, cs := range c.sims {
			c.feed(i, cs.M)
		}
	})
	return c, nil
}

// feed hands stock tasks to cluster i after an idle notification: the
// OnIdle hook reports free processors with the on-site queue already
// refilled, so the top-up sees no queued best-effort backlog.
func (c *Centralized) feed(i, free int) {
	c.grant(i, c.fill.TopUp(free, 0, len(c.stock)))
}

// grant moves n tasks from the central stock to cluster i.
func (c *Centralized) grant(i, n int) {
	for ; n > 0 && len(c.stock) > 0; n-- {
		t := c.stock[0]
		c.stock = c.stock[1:]
		c.inFlight++
		c.sims[i].SubmitBestEffort(t)
	}
}

// requeue returns a killed task to the central stock ("the central
// server then has to submit it once again", §5.2).
func (c *Centralized) requeue(t cluster.BETask) {
	c.inFlight--
	c.stats.TasksKilled++
	c.stats.Resubmissions++
	c.stock = append(c.stock, t)
	// Another cluster may have room right now.
	c.scheduleRedistribute()
}

// scheduleRedistribute queues one zero-delay redistribution pass, however
// many kills/completions request it before the pass runs.
func (c *Centralized) scheduleRedistribute() {
	if c.redistributePending {
		return
	}
	c.redistributePending = true
	_ = c.DES.After(0, func() {
		c.redistributePending = false
		c.redistribute()
	})
}

func (c *Centralized) taskDone(t cluster.BETask) {
	c.inFlight--
	c.stats.TasksCompleted++
	c.stats.DoneWork += t.Duration
	if now := c.DES.Now(); now > c.stats.GridMakespan {
		c.stats.GridMakespan = now
	}
	c.scheduleRedistribute()
}

// redistribute offers stock to clusters with free processors via the
// shared CentralizedFill policy: each cluster's on-site best-effort
// queue is topped up to at most its free capacity. Keeping the stock
// central (rather than dumping it into one cluster's queue) is what lets
// killed work drift to whichever cluster has holes — the essence of the
// CiGri server.
func (c *Centralized) redistribute() {
	loads := make([]cluster.LoadInfo, len(c.sims))
	for i, cs := range c.sims {
		loads[i] = cluster.LoadInfo{Free: cs.Free(), BEQueued: cs.BestEffortQueueLength()}
	}
	for i, n := range c.fill.Grants(loads, len(c.stock)) {
		c.grant(i, n)
	}
}

// Run drives the whole grid to completion: all local jobs and all grid
// tasks done.
func (c *Centralized) Run() error {
	// The DES drains when nothing is left to do; killed tasks re-enter
	// the stock and are re-fed via zero-delay events, so progress holds
	// as long as at least one cluster eventually frees a processor.
	for {
		if err := c.DES.Run(); err != nil {
			return err
		}
		if len(c.stock) == 0 {
			break
		}
		// Stock left but no events pending: every cluster's best-effort
		// queue was full at the time of the last feed. Push again.
		before := len(c.stock)
		c.redistribute()
		if c.DES.Pending() == 0 && len(c.stock) == before {
			return fmt.Errorf("grid: %d tasks stuck in central stock", len(c.stock))
		}
	}
	for i, cs := range c.sims {
		st := cs.BestEffort()
		c.stats.PerCluster = append(c.stats.PerCluster, st)
		c.stats.WastedWork += st.WastedWork
		_ = i
	}
	return nil
}

// Stats returns the aggregated grid statistics (valid after Run).
func (c *Centralized) Stats() CentralizedStats { return c.stats }

// LocalCompletions returns the local-job records of cluster i.
func (c *Centralized) LocalCompletions(i int) []metrics.Completion {
	return c.sims[i].Completions()
}

// Members returns the member count.
func (c *Centralized) Members() int { return len(c.sims) }
