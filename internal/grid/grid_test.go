package grid

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workload"
)

func rjob(id int, dur float64, procs int, release float64) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: release,
		SeqTime: dur * float64(procs), MinProcs: procs, MaxProcs: procs,
		Model: workload.Linear{},
	}
}

func smallMembers(jobsPer [][]*workload.Job) []Member {
	ms := make([]Member, len(jobsPer))
	for i := range ms {
		ms[i] = Member{
			Cluster: &platform.Cluster{
				Name: string(rune('a' + i)), Nodes: 4, ProcsPerNode: 1, Speed: 1,
			},
			Policy: cluster.EASYPolicy{},
			Local:  jobsPer[i],
		}
	}
	return ms
}

func TestCentralizedCompletesAllGridTasks(t *testing.T) {
	members := smallMembers([][]*workload.Job{
		{rjob(1, 10, 2, 0)},
		{rjob(2, 5, 4, 0)},
	})
	bags := []*workload.Bag{
		{ID: 0, Runs: 30, RunTime: 2, Name: "bag0"},
		{ID: 1, Runs: 10, RunTime: 1, Name: "bag1"},
	}
	g, err := NewCentralized(members, bags, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.TasksCompleted != 40 {
		t.Fatalf("completed %d grid tasks, want 40", st.TasksCompleted)
	}
	if st.DoneWork != 30*2+10*1 {
		t.Fatalf("done work %v", st.DoneWork)
	}
	if st.GridMakespan <= 0 {
		t.Fatal("grid makespan not recorded")
	}
}

func TestCentralizedLocalJobsUndisturbed(t *testing.T) {
	// The §5.2 fairness contract: local completion times with the grid
	// active must equal those of an isolated run.
	local := [][]*workload.Job{
		{rjob(1, 10, 3, 0), rjob(2, 4, 2, 1), rjob(3, 6, 4, 2)},
		{rjob(4, 8, 2, 0), rjob(5, 3, 1, 5)},
	}
	isolated, err := RunIsolated(smallMembers(local), cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	bags := []*workload.Bag{{ID: 0, Runs: 200, RunTime: 3, Name: "bag"}}
	g, err := NewCentralized(smallMembers(local), bags, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	var withGrid []metrics.Completion
	for i := 0; i < g.Members(); i++ {
		withGrid = append(withGrid, g.LocalCompletions(i)...)
	}
	isoEnd := map[int]float64{}
	for _, c := range isolated {
		isoEnd[c.Job.ID] = c.End
	}
	for _, c := range withGrid {
		if math.Abs(isoEnd[c.Job.ID]-c.End) > 1e-9 {
			t.Fatalf("job %d: end %v with grid vs %v isolated", c.Job.ID, c.End, isoEnd[c.Job.ID])
		}
	}
	// With a 200-task bag and busy clusters, kills must have occurred.
	if g.Stats().TasksKilled == 0 {
		t.Fatal("no kill events despite local jobs claiming processors")
	}
	if g.Stats().TasksCompleted != 200 {
		t.Fatalf("completed %d, want 200 (kills must be resubmitted)", g.Stats().TasksCompleted)
	}
}

func TestCentralizedWastedWorkAccounting(t *testing.T) {
	local := [][]*workload.Job{{rjob(1, 10, 4, 5)}}
	bags := []*workload.Bag{{ID: 0, Runs: 4, RunTime: 100, Name: "long"}}
	g, err := NewCentralized(smallMembers(local[:1]), bags, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	// 4 tasks start at 0, all killed at t=5 → 20 wasted; later they rerun.
	if st.TasksKilled < 4 {
		t.Fatalf("kills %d, want >= 4", st.TasksKilled)
	}
	if st.WastedWork <= 0 {
		t.Fatal("no wasted work recorded")
	}
	if st.TasksCompleted != 4 {
		t.Fatalf("completed %d, want 4", st.TasksCompleted)
	}
}

func TestCentralizedOnCIMENT(t *testing.T) {
	// Smoke-scale CIMENT run: community jobs + one campaign.
	grid := platform.CIMENT()
	rng := stats.NewRNG(7)
	var members []Member
	id := 0
	for _, cl := range grid.Clusters {
		var jobs []*workload.Job
		clock := 0.0
		for k := 0; k < 10; k++ {
			clock += rng.Exp(0.01)
			jobs = append(jobs, rjob(id, rng.Range(60, 600), rng.IntRange(1, 8), clock))
			id++
		}
		members = append(members, Member{Cluster: cl, Policy: cluster.EASYPolicy{}, Local: jobs})
	}
	bags := []*workload.Bag{{ID: 0, Runs: 500, RunTime: 30, Name: "param"}}
	g, err := NewCentralized(members, bags, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Stats().TasksCompleted != 500 {
		t.Fatalf("completed %d of 500", g.Stats().TasksCompleted)
	}
}

func TestDecentralizedBalancesLoad(t *testing.T) {
	// All 60 jobs land on cluster 0 of 3: exchange must move some and
	// improve mean flow versus isolation.
	rng := stats.NewRNG(3)
	var jobs []*workload.Job
	clock := 0.0
	for i := 0; i < 60; i++ {
		clock += rng.Exp(0.5)
		jobs = append(jobs, rjob(i, rng.Range(5, 30), rng.IntRange(1, 3), clock))
	}
	split := SplitJobsSkewed(jobs, 3, 1.0)
	isolated, err := RunIsolated(smallMembers(split), cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	cloneSplit := SplitJobsSkewed(cloneJobs(jobs), 3, 1.0)
	d, err := NewDecentralized(smallMembers(cloneSplit), DecentralizedOptions{
		Period: 10, Threshold: 1.2, MaxMove: 8,
	}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Migrations == 0 {
		t.Fatal("no migrations under extreme skew")
	}
	exchanged := d.AllCompletions()
	if len(exchanged) != 60 {
		t.Fatalf("%d completions, want 60", len(exchanged))
	}
	flowIso := metrics.MeanFlow(isolated)
	flowEx := metrics.MeanFlow(exchanged)
	if flowEx >= flowIso {
		t.Fatalf("exchange did not improve mean flow: %v vs isolated %v", flowEx, flowIso)
	}
}

func TestDecentralizedNoMigrationWhenBalanced(t *testing.T) {
	rng := stats.NewRNG(5)
	var jobs []*workload.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, rjob(i, rng.Range(1, 5), 1, 0))
	}
	split := SplitJobsRoundRobin(jobs, 3)
	d, err := NewDecentralized(smallMembers(split), DecentralizedOptions{
		Period: 5, Threshold: 3,
	}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Migrations != 0 {
		t.Fatalf("%d migrations on a balanced load", d.Stats().Migrations)
	}
}

func TestDecentralizedWideJobNotMovedToSmallCluster(t *testing.T) {
	// Cluster 0 (8 procs) overloaded with 8-proc jobs; cluster 1 has only
	// 4 procs: they must not migrate there.
	members := []Member{
		{
			Cluster: &platform.Cluster{Name: "big", Nodes: 8, ProcsPerNode: 1, Speed: 1},
			Policy:  cluster.EASYPolicy{},
		},
		{
			Cluster: &platform.Cluster{Name: "small", Nodes: 4, ProcsPerNode: 1, Speed: 1},
			Policy:  cluster.EASYPolicy{},
		},
	}
	for i := 0; i < 6; i++ {
		members[0].Local = append(members[0].Local, rjob(i, 10, 8, 0))
	}
	d, err := NewDecentralized(members, DecentralizedOptions{Period: 5, Threshold: 1.1}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.LocalCompletions(1)); got != 0 {
		t.Fatalf("small cluster ran %d oversized jobs", got)
	}
	if got := len(d.LocalCompletions(0)); got != 6 {
		t.Fatalf("big cluster completed %d of 6", got)
	}
}

func TestSplitters(t *testing.T) {
	jobs := make([]*workload.Job, 10)
	for i := range jobs {
		jobs[i] = rjob(i, 1, 1, 0)
	}
	rr := SplitJobsRoundRobin(jobs, 3)
	if len(rr[0]) != 4 || len(rr[1]) != 3 || len(rr[2]) != 3 {
		t.Fatalf("round-robin split %d/%d/%d", len(rr[0]), len(rr[1]), len(rr[2]))
	}
	sk := SplitJobsSkewed(jobs, 3, 0.8)
	if len(sk[0]) != 8 {
		t.Fatalf("skewed split gave member 0 %d jobs, want 8", len(sk[0]))
	}
	one := SplitJobsSkewed(jobs, 1, 0.5)
	if len(one[0]) != 10 {
		t.Fatal("k=1 skew must keep all jobs")
	}
}

func TestEmptyMembersRejected(t *testing.T) {
	if _, err := NewCentralized(nil, nil, cluster.KillNewest); err == nil {
		t.Fatal("empty centralized accepted")
	}
	if _, err := NewDecentralized(nil, DecentralizedOptions{}, cluster.KillNewest); err == nil {
		t.Fatal("empty decentralized accepted")
	}
}

func cloneJobs(jobs []*workload.Job) []*workload.Job {
	out := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}

func TestPullProtocolStealsWork(t *testing.T) {
	rng := stats.NewRNG(9)
	var jobs []*workload.Job
	clock := 0.0
	for i := 0; i < 50; i++ {
		clock += rng.Exp(0.5)
		jobs = append(jobs, rjob(i, rng.Range(5, 30), rng.IntRange(1, 3), clock))
	}
	split := SplitJobsSkewed(jobs, 3, 1.0)
	iso, err := RunIsolated(smallMembers(split), cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecentralized(smallMembers(SplitJobsSkewed(cloneJobs(jobs), 3, 1.0)),
		DecentralizedOptions{Period: 10, MaxMove: 4, Protocol: Pull}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Migrations == 0 {
		t.Fatal("pull protocol stole nothing under extreme skew")
	}
	ex := d.AllCompletions()
	if len(ex) != 50 {
		t.Fatalf("%d completions, want 50", len(ex))
	}
	if metrics.MeanFlow(ex) >= metrics.MeanFlow(iso) {
		t.Fatalf("pull (%v) did not improve on isolated (%v)",
			metrics.MeanFlow(ex), metrics.MeanFlow(iso))
	}
}

func TestPullDoesNotStealWhenBusy(t *testing.T) {
	// Identical full-width jobs dealt evenly: all queues drain in
	// lockstep, so no cluster is ever idle while another has queued
	// work — a pull round must never migrate.
	var jobs []*workload.Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, rjob(i, 20, 4, 0)) // all full-width, same length
	}
	split := SplitJobsRoundRobin(jobs, 3)
	d, err := NewDecentralized(smallMembers(split),
		DecentralizedOptions{Period: 5, MaxMove: 4, Protocol: Pull}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Migrations != 0 {
		t.Fatalf("pull migrated %d jobs while every cluster was busy", d.Stats().Migrations)
	}
}

func TestCentralizedApproachesSteadyStateBound(t *testing.T) {
	// §5.2's cross-model claim: multi-parametric jobs are DLT-like and
	// "the theory of asymptotic behavior shows that optimal solutions
	// can be computed in polynomial time". With no local jobs and free
	// communication, the CiGri grid should process a large campaign at
	// close to the aggregate-capacity rate Σ procs·speed — the
	// steady-state throughput bound with zero link cost.
	g := platform.CIMENT()
	var members []Member
	for _, cl := range g.Clusters {
		members = append(members, Member{Cluster: cl, Policy: cluster.EASYPolicy{}})
	}
	const runs, runTime = 20000, 50.0
	bags := []*workload.Bag{{ID: 0, Runs: runs, RunTime: runTime, Name: "big"}}
	gr, err := NewCentralized(members, bags, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.Run(); err != nil {
		t.Fatal(err)
	}
	var capacity float64
	for _, cl := range g.Clusters {
		capacity += float64(cl.Procs()) * cl.Speed
	}
	ideal := float64(runs) * runTime / capacity
	got := gr.Stats().GridMakespan
	if got < ideal*(1-1e-9) {
		t.Fatalf("grid makespan %v beat the capacity bound %v", got, ideal)
	}
	// Startup + tail slack only: within 15% of the asymptotic optimum.
	if got > ideal*1.15 {
		t.Fatalf("grid makespan %v too far from steady-state bound %v", got, ideal)
	}
	if gr.Stats().TasksCompleted != runs {
		t.Fatalf("completed %d of %d", gr.Stats().TasksCompleted, runs)
	}
}
