package faults

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/lowerbound"
	"repro/internal/workload"
)

func rjob(id int, dur float64, procs int, release float64) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: release,
		SeqTime: dur * float64(procs), MinProcs: procs, MaxProcs: procs,
		Model: workload.Linear{},
	}
}

func newSim(t *testing.T, m int) *cluster.Sim {
	t.Helper()
	s, err := cluster.New(des.New(), m, 1, cluster.EASYPolicy{}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAttachValidates(t *testing.T) {
	bad := []Plan{
		{},                                       // empty plan
		{MTBF: -1},                               // negative
		{MTTR: 5},                                // MTTR without MTBF
		{Outages: []Outage{{Start: 5, End: 5}}},  // empty window
		{Outages: []Outage{{Start: -1, End: 5}}}, // negative start
		{Trace: []AvailStep{{Time: 10, Avail: 4}, {Time: 5, Avail: 8}}}, // backwards
		{Partitions: []PartitionWindow{{Start: 0, End: 10}}},            // no clusters
	}
	for i, p := range bad {
		if _, err := Attach(newSim(t, 8), p); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
	if _, err := Attach(nil, Plan{MTBF: 100}); err == nil {
		t.Error("nil sim accepted")
	}
}

// runPlan drives one workload under a plan and returns the sim.
func runPlan(t *testing.T, p Plan, n int) *cluster.Sim {
	t.Helper()
	s := newSim(t, 8)
	if _, err := Attach(s, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Submit(rjob(i+1, 15, 2, float64(5*i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChurnEndToEnd: seeded churn crashes fire, repairs restore
// capacity, all local work completes, and the DES drains (the stop
// condition keeps a self-rescheduling process from running forever).
func TestChurnEndToEnd(t *testing.T) {
	p := Plan{MTBF: 30, MTTR: 10, CrashProcs: 4, Seed: 3}
	s := runPlan(t, p, 40)
	fs := s.FaultStats()
	if fs.Crashes == 0 {
		t.Fatal("churn produced no crashes")
	}
	if got := len(s.Completions()); got != 40 {
		t.Fatalf("completions = %d, want 40", got)
	}
	if s.DES.Pending() != 0 {
		t.Fatalf("DES still holds %d events after Run", s.DES.Pending())
	}
}

// TestChurnDeterminism: equal plan and seed, equal fault history and
// completion records.
func TestChurnDeterminism(t *testing.T) {
	p := Plan{MTBF: 25, MTTR: 8, CrashProcs: 3, Seed: 11}
	a, b := runPlan(t, p, 30), runPlan(t, p, 30)
	fa, fb := a.FaultStats(), b.FaultStats()
	if fa != fb {
		t.Fatalf("fault stats diverge: %+v vs %+v", fa, fb)
	}
	ca, cb := a.Completions(), b.Completions()
	if len(ca) != len(cb) {
		t.Fatalf("completion counts diverge: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Job.ID != cb[i].Job.ID || ca[i].Start != cb[i].Start || ca[i].End != cb[i].End {
			t.Fatalf("completion %d diverges: %+v vs %+v", i, ca[i], cb[i])
		}
	}
}

// TestSeedChangesSchedule: a different fault seed must produce a
// different crash history on a churn-heavy plan (sanity check that the
// seed actually feeds the RNG).
func TestSeedChangesSchedule(t *testing.T) {
	a := runPlan(t, Plan{MTBF: 20, MTTR: 10, CrashProcs: 4, Seed: 1}, 40).FaultStats()
	b := runPlan(t, Plan{MTBF: 20, MTTR: 10, CrashProcs: 4, Seed: 2}, 40).FaultStats()
	if a == b {
		t.Fatalf("seeds 1 and 2 produced identical fault histories: %+v", a)
	}
}

// TestMaxCrashes: the churn process stops at the cap.
func TestMaxCrashes(t *testing.T) {
	p := Plan{MTBF: 5, MTTR: 2, CrashProcs: 1, MaxCrashes: 3, Seed: 9}
	s := newSim(t, 8)
	e, err := Attach(s, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Submit(rjob(i+1, 10, 2, float64(3*i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Crashes() != 3 {
		t.Fatalf("churn crashes = %d, want exactly 3", e.Crashes())
	}
}

// TestOutagesAndTrace: scheduled windows fire as ordinary DES events.
func TestOutagesAndTrace(t *testing.T) {
	p := Plan{
		Outages: []Outage{{Start: 10, End: 30, Procs: 4}},
		Trace:   []AvailStep{{Time: 50, Avail: 2}, {Time: 60, Avail: 8}},
	}
	s := runPlan(t, p, 20)
	fs := s.FaultStats()
	if fs.Crashes != 1 || fs.Repairs != 1 {
		t.Fatalf("fault stats = %+v, want 1 crash and 1 repair from the outage", fs)
	}
	if fs.DownProcSeconds < 4*20+6*10 {
		t.Fatalf("down proc-seconds = %v, want at least %v", fs.DownProcSeconds, 4*20+6*10)
	}
	if got := len(s.Completions()); got != 20 {
		t.Fatalf("completions = %d, want 20", got)
	}
}

// --- twin ----------------------------------------------------------

func TestAvgAvailabilityExact(t *testing.T) {
	m := 10
	cases := []struct {
		name    string
		plan    Plan
		horizon float64
		want    float64
	}{
		{"empty", Plan{}, 100, 1},
		{"churn steady state", Plan{MTBF: 100, MTTR: 10, CrashProcs: 2}, 1000, 1 - (2.0*10/100)/10},
		{"outage half horizon", Plan{Outages: []Outage{{Start: 0, End: 50, Procs: 10}}}, 100, 0.5},
		{"outage clipped", Plan{Outages: []Outage{{Start: 50, End: 1e9, Procs: 5}}}, 100, 0.75},
		{"trace tail", Plan{Trace: []AvailStep{{Time: 50, Avail: 5}}}, 100, 1 - 0.25},
	}
	for _, tc := range cases {
		if got := AvgAvailability(tc.plan, m, tc.horizon); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: availability = %v, want %v", tc.name, got, tc.want)
		}
	}
	if got := AvgAvailability(Plan{Outages: []Outage{{Start: 0, End: 100}}}, m, 100); got != 1e-3 {
		t.Errorf("total blackout availability = %v, want the 1e-3 floor", got)
	}
}

// TestPredictCmaxLowerBound: the twin never exceeds the simulated
// makespan and never goes below the healthy bound.
func TestPredictCmaxLowerBound(t *testing.T) {
	var jobs []*workload.Job
	for i := 0; i < 60; i++ {
		jobs = append(jobs, rjob(i+1, 15, 2, float64(i)))
	}
	plans := []Plan{
		{},
		{MTBF: 40, MTTR: 15, CrashProcs: 4, Seed: 5},
		{Outages: []Outage{{Start: 20, End: 200, Procs: 4}}},
	}
	healthy := lowerbound.Cmax(jobs, 8)
	for i, p := range plans {
		pred := PredictCmax(jobs, 8, p)
		if pred < healthy {
			t.Fatalf("plan %d: prediction %v below healthy bound %v", i, pred, healthy)
		}
		s := newSim(t, 8)
		if i > 0 {
			if _, err := Attach(s, p); err != nil {
				t.Fatal(err)
			}
		}
		for _, j := range jobs {
			jc := *j
			if err := s.Submit(&jc); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		sim := s.Report().Makespan
		if sim < pred-1e-9 {
			t.Fatalf("plan %d: simulated makespan %v beats the lower bound %v", i, sim, pred)
		}
		if e := PredictionError(sim, pred); e < -1e-12 {
			t.Fatalf("plan %d: negative prediction error %v", i, e)
		}
	}
}

// TestPredictCmaxDiscounts: a heavy churn plan must lift the prediction
// above the healthy bound when the area term dominates.
func TestPredictCmaxDiscounts(t *testing.T) {
	var jobs []*workload.Job
	for i := 0; i < 80; i++ {
		jobs = append(jobs, rjob(i+1, 50, 4, 0)) // offline, area-dominated
	}
	healthy := lowerbound.Cmax(jobs, 8)
	pred := PredictCmax(jobs, 8, Plan{MTBF: 100, MTTR: 50, CrashProcs: 4})
	if pred <= healthy {
		t.Fatalf("prediction %v does not discount availability (healthy %v)", pred, healthy)
	}
}

func TestPredictionError(t *testing.T) {
	if e := PredictionError(110, 100); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("error = %v, want 0.1", e)
	}
	if e := PredictionError(5, 0); e != 0 {
		t.Fatalf("error with zero prediction = %v, want 0", e)
	}
}
