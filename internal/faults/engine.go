// Package faults is the deterministic fault-injection subsystem: a
// seeded engine that turns a declarative scenario.Faults plan into
// ordinary DES events against a cluster simulation — node crashes and
// repairs (exponential churn), scheduled whole- or partial-cluster
// outages, and time-varying availability traces. Rigid local jobs
// caught on crashed capacity are killed and requeued by the cluster
// (wait-time penalty accounted in the §3 criteria); best-effort tasks
// drift back through the existing OnBEKilled/central-stock path — the
// CiGri semantics of §5.2 under actual disturbance. The analytical
// twin in twin.go predicts the availability-discounted makespan bound
// the robustness tables compare simulations against.
//
// Everything is seeded: the same plan and seed produce bit-identical
// fault schedules, sequentially and under the parallel cell runner.
package faults

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Plan is the declarative fault schedule (the scenario Spec axis; the
// aliases keep the one definition and its strict JSON codec).
type Plan = scenario.Faults

// Outage is one scheduled capacity-loss window.
type Outage = scenario.Outage

// AvailStep is one step of an availability trace.
type AvailStep = scenario.AvailStep

// PartitionWindow cuts clusters off the broker for a window.
type PartitionWindow = scenario.PartitionWindow

// minChurnGap floors the exponential draws so a pathological RNG streak
// cannot schedule unbounded events into one instant.
const minChurnGap = 1e-9

// Engine drives one plan against one cluster simulation. It shares the
// sim's DES and owner goroutine: all its events run inline with the
// simulation, so determinism is inherited from the event queue.
type Engine struct {
	sim     *cluster.Sim
	rng     *stats.RNG
	mtbf    float64
	mttr    float64
	procs   int
	maxN    int
	crashes int
}

// Attach validates the plan, schedules its deterministic events
// (outages, trace steps) and arms the churn process on the simulation's
// own DES. It must be called before the simulation runs (virtual time
// 0). The partition windows are not interpreted here — they concern the
// broker layer, see grid.Routed.SetPartitions.
func Attach(sim *cluster.Sim, p Plan) (*Engine, error) {
	if sim == nil {
		return nil, fmt.Errorf("faults: nil sim")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		sim:   sim,
		mtbf:  p.MTBF,
		mttr:  p.MTTR,
		procs: p.CrashProcs,
		maxN:  p.MaxCrashes,
	}
	if e.mtbf > 0 && e.mttr == 0 {
		e.mttr = e.mtbf / 10
	}
	if e.procs <= 0 {
		e.procs = 1
	}
	if e.procs > sim.M {
		e.procs = sim.M
	}
	for _, o := range p.Outages {
		o := o
		procs := o.Procs
		if procs <= 0 || procs > sim.M {
			procs = sim.M
		}
		if err := sim.DES.At(o.Start, func() { _ = sim.Crash(procs, o.End) }); err != nil {
			return nil, err
		}
	}
	for _, st := range p.Trace {
		st := st
		if err := sim.DES.At(st.Time, func() { sim.SetAvailability(st.Avail) }); err != nil {
			return nil, err
		}
	}
	if e.mtbf > 0 {
		e.rng = stats.NewRNG(p.Seed ^ 0x6fa1e5a9c2b3d407)
		if err := e.armChurn(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// armChurn schedules the next churn crash.
func (e *Engine) armChurn() error {
	gap := e.rng.Exp(1 / e.mtbf)
	if gap < minChurnGap {
		gap = minChurnGap
	}
	return e.sim.DES.After(gap, e.churnEvent)
}

// churnEvent fires one churn crash and re-arms, unless the simulation
// has no further work (the stop condition that lets DES.Run drain: a
// self-rescheduling process would otherwise keep the heap alive
// forever) or MaxCrashes is reached.
func (e *Engine) churnEvent() {
	if e.done() {
		return
	}
	dur := e.rng.Exp(1 / e.mttr)
	if dur < minChurnGap {
		dur = minChurnGap
	}
	e.crashes++
	_ = e.sim.Crash(e.procs, e.sim.DES.Now()+dur)
	if e.maxN > 0 && e.crashes >= e.maxN {
		return
	}
	_ = e.armChurn()
}

// done reports whether every known unit of work has completed: all
// admitted local jobs done, nothing queued or running, no best-effort
// work waiting, and no lazy-admission source still attached.
func (e *Engine) done() bool {
	s := e.sim
	return !s.Streaming() &&
		s.CompletedCount() >= s.Submitted() &&
		s.QueueLength() == 0 && s.RunningCount() == 0 &&
		s.BestEffortActive() == 0 && s.BestEffortQueueLength() == 0
}

// Crashes returns the number of churn crashes fired so far (the
// scheduled outages and trace steps are counted by the cluster's own
// FaultStats).
func (e *Engine) Crashes() int { return e.crashes }
