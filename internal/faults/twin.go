// The analytical twin: closed-form predictions of what a fault plan
// does to a schedule, validated against the simulator by the
// predicted-vs-simulated tables. The model discounts the area term of
// the internal/lowerbound makespan bound by the plan's time-averaged
// availability fraction ā — on ā·m expected working processors, no
// schedule can beat total-work / (ā·m) — solved as a fixed point
// because ā itself depends on the horizon over which finite outages
// and trace windows are averaged.
package faults

import (
	"math"

	"repro/internal/lowerbound"
	"repro/internal/workload"
)

// AvgAvailability returns ā: the expected fraction of an m-processor
// cluster's capacity that is up, time-averaged over [0, horizon].
// Churn contributes its M/G/∞ steady state (CrashProcs·MTTR/MTBF
// expected processors down); outages and trace windows contribute
// their exact time-weighted overlap with the horizon. The result is
// clamped to (0, 1].
func AvgAvailability(p Plan, m int, horizon float64) float64 {
	if m <= 0 || !(horizon > 0) {
		return 1
	}
	var down float64 // proc-seconds of expected unavailability
	if p.MTBF > 0 {
		mttr := p.MTTR
		if mttr <= 0 {
			mttr = p.MTBF / 10
		}
		procs := p.CrashProcs
		if procs <= 0 {
			procs = 1
		}
		if procs > m {
			procs = m
		}
		d := float64(procs) * mttr / p.MTBF
		if d > float64(m) {
			d = float64(m)
		}
		down += d * horizon
	}
	for _, o := range p.Outages {
		procs := o.Procs
		if procs <= 0 || procs > m {
			procs = m
		}
		lo, hi := math.Max(0, o.Start), math.Min(horizon, o.End)
		if hi > lo {
			down += float64(procs) * (hi - lo)
		}
	}
	for i, st := range p.Trace {
		avail := st.Avail
		if avail > m {
			avail = m
		}
		end := horizon
		if i+1 < len(p.Trace) && p.Trace[i+1].Time < end {
			end = p.Trace[i+1].Time
		}
		lo, hi := math.Max(0, st.Time), math.Min(horizon, end)
		if hi > lo {
			down += float64(m-avail) * (hi - lo)
		}
	}
	a := 1 - down/(float64(m)*horizon)
	if a < 1e-3 {
		a = 1e-3 // the bound stays finite even under total blackout plans
	}
	if a > 1 {
		a = 1
	}
	return a
}

// PredictCmax returns the availability-discounted makespan lower bound
// for jobs on an m-processor cluster under plan p: the fixed point of
//
//	h = max( Cmax_lb(jobs, m),  area(jobs) / (ā(h) · m) )
//
// where Cmax_lb is the strongest healthy bound (dual approximation +
// release term) and ā(h) the plan's average availability over [0, h].
// The iteration is monotone (ā can only shrink as h covers more of the
// plan) and runs a fixed number of rounds, so the result is
// deterministic.
func PredictCmax(jobs []*workload.Job, m int, p Plan) float64 {
	healthy := lowerbound.Cmax(jobs, m)
	if healthy <= 0 || m <= 0 {
		return healthy
	}
	area := lowerbound.CmaxArea(jobs, m)
	h := healthy
	for range 16 {
		a := AvgAvailability(p, m, h)
		next := math.Max(healthy, area/a)
		if math.Abs(next-h) <= 1e-9*math.Max(1, h) {
			return next
		}
		h = next
	}
	return h
}

// PredictionError returns the signed relative error of the twin's
// prediction against a simulated makespan: (simulated − predicted) /
// predicted. Positive values mean the simulation ran longer than the
// bound (always expected — the twin is a lower bound); the tables
// report it as a percentage.
func PredictionError(simulated, predicted float64) float64 {
	if predicted <= 0 {
		return 0
	}
	return (simulated - predicted) / predicted
}
