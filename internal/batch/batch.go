// Package batch implements the generic batch framework of Shmoys, Wein
// and Williamson used in §4.2 of the paper: any offline algorithm with
// performance ratio ρ for scheduling independent tasks without release
// dates becomes an online (unknown release dates) algorithm with ratio
// 2ρ by gathering arrivals into successive batches. Combined with the
// MRT 3/2+ε offline algorithm this yields the paper's 3+ε online
// moldable result.
package batch

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/moldable"
	"repro/internal/sched"
	"repro/internal/workload"
)

// OfflineScheduler schedules a job set on m processors assuming all jobs
// are available at time 0 (release dates ignored). Returned schedules
// must start at or after 0.
type OfflineScheduler func(jobs []*workload.Job, m int) (*sched.Schedule, error)

// MRTOffline adapts the §4.1 MRT algorithm as the offline procedure.
func MRTOffline(eps float64) OfflineScheduler {
	return func(jobs []*workload.Job, m int) (*sched.Schedule, error) {
		res, err := moldable.MRT(jobs, m, eps)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}
}

// Info describes one executed batch (for experiment reporting).
type Info struct {
	Start    float64
	End      float64
	JobCount int
}

// Result is the outcome of the batch framework.
type Result struct {
	Schedule *sched.Schedule
	Batches  []Info
}

// Online runs the batch framework: batch k collects every job released
// during batch k-1's execution (plus, initially, everything released at
// or before the first release instant) and schedules it with the offline
// algorithm as soon as batch k-1 completes.
func Online(jobs []*workload.Job, m int, offline OfflineScheduler) (*Result, error) {
	if offline == nil {
		return nil, fmt.Errorf("batch: nil offline scheduler")
	}
	pending := append([]*workload.Job(nil), jobs...)
	sort.SliceStable(pending, func(i, k int) bool {
		if pending[i].Release != pending[k].Release {
			return pending[i].Release < pending[k].Release
		}
		return pending[i].ID < pending[k].ID
	})
	out := &Result{Schedule: sched.New(m)}
	if len(pending) == 0 {
		return out, nil
	}
	clock := pending[0].Release
	idx := 0
	for idx < len(pending) {
		// Gather everything released by the clock.
		var batchJobs []*workload.Job
		for idx < len(pending) && pending[idx].Release <= clock+1e-12 {
			batchJobs = append(batchJobs, pending[idx])
			idx++
		}
		if len(batchJobs) == 0 {
			// Idle until the next arrival.
			clock = pending[idx].Release
			continue
		}
		bs, err := offline(batchJobs, m)
		if err != nil {
			return nil, fmt.Errorf("batch: offline scheduler failed: %w", err)
		}
		if err := bs.Covers(batchJobs); err != nil {
			return nil, fmt.Errorf("batch: offline scheduler dropped jobs: %w", err)
		}
		shifted := bs.Shift(clock)
		if err := out.Schedule.Merge(shifted); err != nil {
			return nil, err
		}
		// The batch boundary is the shifted schedule's own makespan:
		// clock + bs.Makespan() can differ from it by one float rounding,
		// which would overlap the next batch by a hair.
		end := shifted.Makespan()
		out.Batches = append(out.Batches, Info{Start: clock, End: end, JobCount: len(batchJobs)})
		if end <= clock {
			// Zero-length batch cannot happen with positive job times;
			// guard against pathological offline schedulers.
			return nil, fmt.Errorf("batch: batch did not advance the clock at t=%v", clock)
		}
		clock = end
	}
	if err := out.Schedule.Validate(); err != nil {
		return nil, fmt.Errorf("batch: produced invalid schedule: %w", err)
	}
	return out, nil
}

// OnlineMoldable is the paper's §4.2 composition: batches over MRT,
// giving ratio 2(3/2 + ε) = 3 + ε for online moldable Cmax.
func OnlineMoldable(jobs []*workload.Job, m int, eps float64) (*Result, error) {
	return Online(jobs, m, MRTOffline(eps))
}

// TheoreticalRatio returns the online ratio 2ρ for a given offline ratio.
func TheoreticalRatio(rho float64) float64 { return 2 * rho }

// MaxBatchSpan returns the longest batch duration (diagnostics).
func (r *Result) MaxBatchSpan() float64 {
	var mx float64
	for _, b := range r.Batches {
		if d := b.End - b.Start; d > mx {
			mx = d
		}
	}
	return mx
}

// Utilization-style check: batches must be disjoint and ordered.
func (r *Result) checkBatches() error {
	prev := math.Inf(-1)
	for i, b := range r.Batches {
		if b.Start < prev-1e-9 {
			return fmt.Errorf("batch: batch %d starts at %v before previous end %v", i, b.Start, prev)
		}
		prev = b.End
	}
	return nil
}
