package batch

import (
	"testing"
	"testing/quick"

	"repro/internal/lowerbound"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func onlineInstance(seed uint64, n, m int, rate float64) []*workload.Job {
	rng := stats.NewRNG(seed)
	jobs := make([]*workload.Job, n)
	clock := 0.0
	for i := range jobs {
		clock += rng.Exp(rate)
		model := workload.SpeedupModel(workload.Amdahl{Alpha: rng.Range(0.02, 0.3)})
		seq := rng.Range(1, 60)
		maxP := rng.IntRange(1, m)
		jobs[i] = &workload.Job{
			ID: i, Kind: workload.Moldable, Weight: 1, DueDate: -1,
			Release: clock, SeqTime: seq, MinProcs: 1, MaxProcs: maxP,
			Model: model, Times: workload.MakeTable(model, seq, maxP),
		}
	}
	return jobs
}

func TestOnlineEmpty(t *testing.T) {
	res, err := OnlineMoldable(nil, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Allocs) != 0 || len(res.Batches) != 0 {
		t.Fatal("empty instance produced allocations")
	}
}

func TestOnlineRespectsReleases(t *testing.T) {
	jobs := onlineInstance(1, 30, 8, 0.2)
	res, err := OnlineMoldable(jobs, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err) // Validate includes the release check
	}
	if err := res.Schedule.Covers(jobs); err != nil {
		t.Fatal(err)
	}
	if err := res.checkBatches(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineBatchesDoNotOverlap(t *testing.T) {
	jobs := onlineInstance(2, 50, 16, 0.5)
	res, err := OnlineMoldable(jobs, 16, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Batches); i++ {
		if res.Batches[i].Start < res.Batches[i-1].End-1e-9 {
			t.Fatalf("batch %d starts at %v before previous end %v",
				i, res.Batches[i].Start, res.Batches[i-1].End)
		}
	}
	total := 0
	for _, b := range res.Batches {
		total += b.JobCount
	}
	if total != len(jobs) {
		t.Fatalf("batches covered %d of %d jobs", total, len(jobs))
	}
}

func TestOnlineSingleBatchWhenAllAtZero(t *testing.T) {
	jobs := onlineInstance(3, 20, 8, 1000) // arrivals essentially at 0
	for _, j := range jobs {
		j.Release = 0
	}
	res, err := OnlineMoldable(jobs, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 {
		t.Fatalf("offline-like instance used %d batches, want 1", len(res.Batches))
	}
}

func TestOnlineRatioEnvelope(t *testing.T) {
	// §4.2: batches over MRT give 3 + ε for Cmax with release dates; we
	// measure against our lower bound — the measured ratio must stay well
	// inside the theoretical envelope on random instances.
	worst := 0.0
	for seed := uint64(0); seed < 8; seed++ {
		jobs := onlineInstance(seed, 60, 16, 0.3)
		res, err := OnlineMoldable(jobs, 16, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		lb := lowerbound.Cmax(jobs, 16)
		ratio := res.Schedule.Makespan() / lb
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > TheoreticalRatio(1.5)+0.02 {
		t.Fatalf("worst online ratio %v exceeds 2ρ = 3 + ε", worst)
	}
	if worst < 1 {
		t.Fatalf("ratio %v below 1 — bound broken", worst)
	}
}

func TestOnlineNilOffline(t *testing.T) {
	if _, err := Online(nil, 8, nil); err == nil {
		t.Fatal("nil offline scheduler accepted")
	}
}

func TestOnlineOfflineError(t *testing.T) {
	bad := func([]*workload.Job, int) (*sched.Schedule, error) {
		return nil, errFake
	}
	jobs := onlineInstance(4, 5, 4, 1)
	if _, err := Online(jobs, 4, bad); err == nil {
		t.Fatal("offline error not propagated")
	}
}

var errFake = &fakeError{}

type fakeError struct{}

func (*fakeError) Error() string { return "fake" }

func TestOnlineDroppingOfflineRejected(t *testing.T) {
	// An offline scheduler that drops jobs must be caught.
	drop := func(jobs []*workload.Job, m int) (*sched.Schedule, error) {
		s := sched.New(m)
		if len(jobs) > 1 {
			jobs = jobs[:1]
		}
		for _, j := range jobs {
			s.Add(sched.Alloc{Job: j, Start: 0, Procs: j.MinProcs})
		}
		return s, nil
	}
	jobs := onlineInstance(5, 6, 4, 1000)
	if _, err := Online(jobs, 4, drop); err == nil {
		t.Fatal("dropping offline scheduler accepted")
	}
}

func TestTheoreticalRatio(t *testing.T) {
	if TheoreticalRatio(1.5) != 3 {
		t.Fatal("2ρ composition wrong")
	}
}

func TestMaxBatchSpan(t *testing.T) {
	r := &Result{Batches: []Info{{Start: 0, End: 5}, {Start: 5, End: 20}}}
	if r.MaxBatchSpan() != 15 {
		t.Fatalf("MaxBatchSpan = %v", r.MaxBatchSpan())
	}
}

// Property: the batch framework always yields valid complete schedules
// whose batches partition the job set, at any arrival intensity.
func TestOnlineProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8, rateRaw float64) bool {
		n := int(nRaw%30) + 1
		m := int(mRaw%14) + 2
		rate := 0.05 + float64(uint8(rateRaw*100))*0.01
		jobs := onlineInstance(seed, n, m, rate)
		res, err := OnlineMoldable(jobs, m, 0.02)
		if err != nil {
			return false
		}
		if res.Schedule.Validate() != nil || res.Schedule.Covers(jobs) != nil {
			return false
		}
		total := 0
		for _, b := range res.Batches {
			total += b.JobCount
		}
		return total == n && res.checkBatches() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
