// Package bicriteria implements the §4.4 family of algorithms: an ad hoc
// bi-criterion scheduler built from a makespan procedure ACmax run in
// batches of doubling deadlines (d, 2d, 4d, ...), following Hall, Schulz,
// Shmoys and Wein as adapted by the authors in [10]. Each batch schedules
// a maximum-weight subset of the pending jobs within ρ·2^i·d; the result
// is simultaneously 4ρ-competitive for Cmax and for ΣωiCi.
//
// This is the algorithm whose simulation produces Figure 2 of the paper
// (100-machine cluster, parallel and non-parallel jobs, both criteria
// reported as ratios to the optimum estimate).
package bicriteria

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lowerbound"
	"repro/internal/moldable"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Batch reports one doubling batch (for traces and experiments).
type Batch struct {
	Index    int
	Deadline float64 // the 2^i·d deadline driving selection
	Start    float64
	End      float64
	JobCount int
}

// Result is the outcome of the doubling algorithm.
type Result struct {
	Schedule *sched.Schedule
	Batches  []Batch
	// CmaxLB and WCLB are the instance lower bounds used for ratios.
	CmaxLB, WCLB float64
}

// CmaxRatio returns makespan / lower bound.
func (r *Result) CmaxRatio() float64 {
	if r.CmaxLB <= 0 {
		return 1
	}
	return r.Schedule.Makespan() / r.CmaxLB
}

// WCRatio returns ΣwC / lower bound (the "WiCi ratio" axis of Figure 2).
func (r *Result) WCRatio() float64 {
	if r.WCLB <= 0 {
		return 1
	}
	return r.Schedule.Report().SumWeightedCompletion / r.WCLB
}

// Options tunes the algorithm.
type Options struct {
	// InitialDeadline is the base deadline d. Zero picks the smallest
	// minimal execution time among the jobs (the natural starting scale;
	// see the ablation on this choice).
	InitialDeadline float64
	// Rho is the performance ratio of the deadline procedure (3/2 for
	// the MRT construction; exposed for the theoretical 4ρ checks).
	Rho float64
}

// Schedule runs the doubling-batches bi-criteria algorithm on m
// processors. Jobs may carry release dates (the on-line moldable setting
// of §4.4); a job is eligible for a batch only once released by the
// batch's start time.
func Schedule(jobs []*workload.Job, m int, opt Options) (*Result, error) {
	if m <= 0 {
		return nil, fmt.Errorf("bicriteria: %d processors", m)
	}
	if opt.Rho == 0 {
		opt.Rho = moldable.Rho
	}
	res := &Result{
		Schedule: sched.New(m),
		CmaxLB:   lowerbound.Cmax(jobs, m),
		WCLB:     lowerbound.SumWeightedCompletion(jobs, m),
	}
	if len(jobs) == 0 {
		return res, nil
	}
	for _, j := range jobs {
		if t, _ := j.MinTime(m); math.IsInf(t, 0) {
			return nil, fmt.Errorf("bicriteria: job %d cannot run on %d processors", j.ID, m)
		}
	}

	d := opt.InitialDeadline
	if d <= 0 {
		d = math.Inf(1)
		for _, j := range jobs {
			if t, _ := j.MinTime(m); t < d {
				d = t
			}
		}
	}

	pending := append([]*workload.Job(nil), jobs...)
	sort.SliceStable(pending, func(i, k int) bool {
		if pending[i].Release != pending[k].Release {
			return pending[i].Release < pending[k].Release
		}
		return pending[i].ID < pending[k].ID
	})

	clock := 0.0
	deadline := d
	batchIdx := 0
	for len(pending) > 0 {
		// Eligible = released by now.
		var eligible, future []*workload.Job
		for _, j := range pending {
			if j.Release <= clock+1e-12 {
				eligible = append(eligible, j)
			} else {
				future = append(future, j)
			}
		}
		if len(eligible) == 0 {
			// Idle until the next release; the deadline keeps its value
			// (batches only count when they execute work).
			clock = future[0].Release
			continue
		}
		selected, bs := maxWeightBatch(eligible, m, deadline)
		if len(selected) == 0 {
			// Nothing fits the current deadline: double and retry. The
			// geometric growth guarantees progress since every job is
			// runnable on the platform.
			deadline *= 2
			continue
		}
		shifted := bs.Shift(clock)
		if err := res.Schedule.Merge(shifted); err != nil {
			return nil, err
		}
		end := shifted.Makespan()
		res.Batches = append(res.Batches, Batch{
			Index: batchIdx, Deadline: deadline, Start: clock, End: end,
			JobCount: len(selected),
		})
		batchIdx++
		// Remove the scheduled jobs from pending.
		done := make(map[int]bool, len(selected))
		for _, j := range selected {
			done[j.ID] = true
		}
		var rest []*workload.Job
		for _, j := range pending {
			if !done[j.ID] {
				rest = append(rest, j)
			}
		}
		pending = rest
		clock = math.Max(end, clock)
		deadline *= 2
	}
	if err := res.Schedule.Validate(); err != nil {
		return nil, fmt.Errorf("bicriteria: produced invalid schedule: %w", err)
	}
	return res, nil
}

// maxWeightBatch implements the ACmax procedure of §4.4: given a deadline
// D, it returns a subset of jobs of (approximately) maximum total weight
// together with a schedule of length at most ρ·D ≤ 3D/2.
//
// Selection is greedy by weight density (weight per unit of minimal
// work), the classic knapsack relaxation: jobs are admitted while the
// dual-feasibility test for D holds, then the MRT construction is
// attempted; on failure the least-dense selected job is evicted and the
// construction retried, which terminates because a single feasible job
// always constructs.
func maxWeightBatch(jobs []*workload.Job, m int, deadline float64) ([]*workload.Job, *sched.Schedule) {
	// Jobs that cannot individually meet the deadline are out.
	var cands []*workload.Job
	for _, j := range jobs {
		if t, _ := j.MinTime(m); t <= deadline {
			cands = append(cands, j)
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}
	// Density order: weight / minwork, descending. Heavier-per-area jobs
	// first maximizes batch weight under the area budget D·m.
	sort.SliceStable(cands, func(a, b int) bool {
		wa, _ := cands[a].MinWork(m)
		wb, _ := cands[b].MinWork(m)
		da := density(cands[a].Weight, wa)
		db := density(cands[b].Weight, wb)
		if da != db {
			return da > db
		}
		return cands[a].ID < cands[b].ID
	})
	// Greedy admission under the area budget.
	budget := deadline * float64(m)
	var selected []*workload.Job
	var used float64
	for _, j := range cands {
		w, _ := j.MinWork(m)
		if used+w <= budget {
			selected = append(selected, j)
			used += w
		}
	}
	// Construct, evicting from the tail on failure.
	for len(selected) > 0 {
		if s, ok := moldable.ConstructForDeadline(selected, m, deadline); ok {
			return selected, s
		}
		selected = selected[:len(selected)-1]
	}
	return nil, nil
}

func density(weight, work float64) float64 {
	if work <= 0 {
		return math.Inf(1)
	}
	return weight / work
}

// TheoreticalRatio returns the §4.4 guarantee 4ρ for both criteria.
func TheoreticalRatio(rho float64) float64 { return 4 * rho }
