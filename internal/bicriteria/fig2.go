package bicriteria

import (
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig2Point is one point of the Figure 2 curves: the two criterion ratios
// measured for a workload of N tasks.
type Fig2Point struct {
	N         int
	CmaxRatio float64
	WCRatio   float64
}

// Fig2Config parameterizes the Figure 2 reproduction. The paper's setting
// is a cluster of 100 machines, task counts up to 1000, two workload
// families ("Non Parallel" and "Parallel") and the two criteria Cmax and
// ΣωiCi.
type Fig2Config struct {
	M    int   // platform width (paper: 100)
	Ns   []int // task counts (paper: 0..1000)
	Seed uint64
	Reps int // replications averaged per point
	// Parallel selects the moldable-parallel workload family; false
	// selects the sequential ("Non Parallel") family.
	Parallel bool
}

// DefaultNs returns the task-count sweep of Figure 2.
func DefaultNs() []int {
	return []int{10, 25, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
}

// Fig2Series runs the bi-criteria algorithm over the task-count sweep and
// returns the measured ratio curves.
func Fig2Series(cfg Fig2Config) ([]Fig2Point, error) {
	if cfg.M == 0 {
		cfg.M = 100
	}
	if len(cfg.Ns) == 0 {
		cfg.Ns = DefaultNs()
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	points := make([]Fig2Point, 0, len(cfg.Ns))
	rng := stats.NewRNG(cfg.Seed)
	for _, n := range cfg.Ns {
		var cmaxSum, wcSum float64
		for rep := 0; rep < cfg.Reps; rep++ {
			gen := workload.GenConfig{
				N: n, M: cfg.M, Seed: rng.Uint64(), Weighted: true,
			}
			var jobs []*workload.Job
			if cfg.Parallel {
				jobs = workload.Parallel(gen)
			} else {
				jobs = workload.Sequential(gen)
			}
			res, err := Schedule(jobs, cfg.M, Options{})
			if err != nil {
				return nil, fmt.Errorf("bicriteria: fig2 n=%d rep=%d: %w", n, rep, err)
			}
			cmaxSum += res.CmaxRatio()
			wcSum += res.WCRatio()
		}
		points = append(points, Fig2Point{
			N:         n,
			CmaxRatio: cmaxSum / float64(cfg.Reps),
			WCRatio:   wcSum / float64(cfg.Reps),
		})
	}
	return points, nil
}

// WriteFig2 renders both panels of Figure 2 (WiCi ratio and Cmax ratio vs
// number of tasks) as aligned text tables, one row per task count.
func WriteFig2(w io.Writer, nonParallel, parallel []Fig2Point) {
	fmt.Fprintln(w, "Figure 2 — bi-criteria algorithm on a 100-machine cluster")
	fmt.Fprintln(w, "(ratios to lower bounds; paper reports ratios to optimum estimates)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%8s  %22s  %22s\n", "", "WiCi ratio", "Cmax ratio")
	fmt.Fprintf(w, "%8s  %11s %10s  %11s %10s\n",
		"n tasks", "NonParallel", "Parallel", "NonParallel", "Parallel")
	for i := range nonParallel {
		var pWC, pCmax float64
		if i < len(parallel) {
			pWC, pCmax = parallel[i].WCRatio, parallel[i].CmaxRatio
		}
		fmt.Fprintf(w, "%8d  %11.3f %10.3f  %11.3f %10.3f\n",
			nonParallel[i].N, nonParallel[i].WCRatio, pWC,
			nonParallel[i].CmaxRatio, pCmax)
	}
}
