package bicriteria

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func offlineJobs(seed uint64, n, m int, parallel bool) []*workload.Job {
	cfg := workload.GenConfig{N: n, M: m, Seed: seed, Weighted: true}
	if parallel {
		return workload.Parallel(cfg)
	}
	return workload.Sequential(cfg)
}

func TestScheduleEmpty(t *testing.T) {
	res, err := Schedule(nil, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Allocs) != 0 {
		t.Fatal("empty instance produced allocations")
	}
	if res.CmaxRatio() != 1 || res.WCRatio() != 1 {
		t.Fatal("degenerate ratios != 1")
	}
}

func TestScheduleValidCompleteSequential(t *testing.T) {
	jobs := offlineJobs(1, 80, 16, false)
	res, err := Schedule(jobs, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Covers(jobs); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleValidCompleteParallel(t *testing.T) {
	jobs := offlineJobs(2, 80, 16, true)
	res, err := Schedule(jobs, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Covers(jobs); err != nil {
		t.Fatal(err)
	}
}

func TestDoublingDeadlines(t *testing.T) {
	jobs := offlineJobs(3, 60, 16, true)
	res, err := Schedule(jobs, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) < 2 {
		t.Skipf("only %d batches; doubling not observable", len(res.Batches))
	}
	for i := 1; i < len(res.Batches); i++ {
		if res.Batches[i].Deadline < res.Batches[i-1].Deadline*2-1e-9 {
			t.Fatalf("deadlines not doubling: %v -> %v",
				res.Batches[i-1].Deadline, res.Batches[i].Deadline)
		}
		if res.Batches[i].Start < res.Batches[i-1].End-1e-9 {
			t.Fatalf("batches overlap: %v before %v",
				res.Batches[i].Start, res.Batches[i-1].End)
		}
	}
}

func TestRatiosWithinTheory(t *testing.T) {
	// §4.4: 4ρ = 6 on both criteria. Measured against lower bounds the
	// ratios must stay within the envelope (and in practice far below).
	bound := TheoreticalRatio(1.5)
	for seed := uint64(0); seed < 6; seed++ {
		for _, parallel := range []bool{false, true} {
			jobs := offlineJobs(seed, 100, 20, parallel)
			res, err := Schedule(jobs, 20, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r := res.CmaxRatio(); r > bound || r < 1-1e-9 {
				t.Fatalf("seed %d parallel=%v: Cmax ratio %v outside [1, %v]",
					seed, parallel, r, bound)
			}
			if r := res.WCRatio(); r > bound || r < 1-1e-9 {
				t.Fatalf("seed %d parallel=%v: ΣwC ratio %v outside [1, %v]",
					seed, parallel, r, bound)
			}
		}
	}
}

func TestOnlineReleasesRespected(t *testing.T) {
	jobs := workload.Parallel(workload.GenConfig{
		N: 50, M: 16, Seed: 7, Weighted: true, ArrivalRate: 0.1,
	})
	res, err := Schedule(jobs, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err) // includes release checks
	}
	if err := res.Schedule.Covers(jobs); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyJobsFinishEarlier(t *testing.T) {
	// Two identical long jobs, one heavy one light, plus filler: the
	// heavy one must not complete after the light one.
	mk := func(id int, w float64) *workload.Job {
		return &workload.Job{
			ID: id, Kind: workload.Rigid, Weight: w, DueDate: -1,
			SeqTime: 50, MinProcs: 4, MaxProcs: 4, Model: workload.Linear{},
		}
	}
	jobs := []*workload.Job{mk(1, 100), mk(2, 1)}
	res, err := Schedule(jobs, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var endHeavy, endLight float64
	for _, a := range res.Schedule.Allocs {
		if a.Job.ID == 1 {
			endHeavy = a.End()
		} else {
			endLight = a.End()
		}
	}
	if endHeavy > endLight {
		t.Fatalf("heavy job ends at %v after light at %v", endHeavy, endLight)
	}
}

func TestInitialDeadlineOption(t *testing.T) {
	jobs := offlineJobs(8, 30, 8, true)
	a, err := Schedule(jobs, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(jobs, 8, Options{InitialDeadline: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	// A huge initial deadline collapses everything into one batch.
	if len(b.Batches) != 1 {
		t.Fatalf("huge d gave %d batches, want 1", len(b.Batches))
	}
	if err := b.Schedule.Covers(jobs); err != nil {
		t.Fatal(err)
	}
	_ = a
}

func TestImpossibleJobRejected(t *testing.T) {
	j := &workload.Job{
		ID: 1, Kind: workload.Rigid, Weight: 1, DueDate: -1,
		SeqTime: 10, MinProcs: 16, MaxProcs: 16, Model: workload.Linear{},
	}
	if _, err := Schedule([]*workload.Job{j}, 4, Options{}); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestFig2SeriesSmall(t *testing.T) {
	pts, err := Fig2Series(Fig2Config{
		M: 16, Ns: []int{5, 20}, Seed: 1, Reps: 2, Parallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.CmaxRatio < 1-1e-9 || p.CmaxRatio > 6 {
			t.Fatalf("n=%d: Cmax ratio %v out of range", p.N, p.CmaxRatio)
		}
		if p.WCRatio < 1-1e-9 || p.WCRatio > 6 {
			t.Fatalf("n=%d: ΣwC ratio %v out of range", p.N, p.WCRatio)
		}
	}
}

func TestWriteFig2(t *testing.T) {
	np := []Fig2Point{{N: 10, CmaxRatio: 1.5, WCRatio: 2.0}}
	p := []Fig2Point{{N: 10, CmaxRatio: 1.2, WCRatio: 1.8}}
	var sb strings.Builder
	WriteFig2(&sb, np, p)
	out := sb.String()
	for _, want := range []string{"WiCi ratio", "Cmax ratio", "1.500", "1.200"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// Property: the doubling algorithm emits valid, complete schedules with
// both ratios inside the 4ρ envelope, over random mixed workloads.
func TestBicriteriaProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8, parallel bool) bool {
		n := int(nRaw%40) + 1
		m := int(mRaw%14) + 2
		jobs := offlineJobs(seed, n, m, parallel)
		res, err := Schedule(jobs, m, Options{})
		if err != nil {
			return false
		}
		if res.Schedule.Validate() != nil || res.Schedule.Covers(jobs) != nil {
			return false
		}
		return res.CmaxRatio() <= 6+1e-9 && res.WCRatio() <= 6+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWeightBatchSelectsByDensity(t *testing.T) {
	// Budget for ~one job: the heavy-per-area job must win the batch.
	mk := func(id int, seq, w float64) *workload.Job {
		return &workload.Job{
			ID: id, Kind: workload.Rigid, Weight: w, DueDate: -1,
			SeqTime: seq, MinProcs: 4, MaxProcs: 4, Model: workload.Linear{},
		}
	}
	dense := mk(1, 40, 100) // time 10 on 4 procs
	sparse := mk(2, 40, 1)
	selected, s := maxWeightBatch([]*workload.Job{sparse, dense}, 4, 10)
	if s == nil || len(selected) == 0 {
		t.Fatal("no batch built")
	}
	foundDense := false
	for _, j := range selected {
		if j.ID == 1 {
			foundDense = true
		}
	}
	if !foundDense {
		t.Fatal("density order ignored: heavy job not selected")
	}
}

func TestMaxWeightBatchRespectsDeadline(t *testing.T) {
	mk := func(id int, seq float64) *workload.Job {
		return &workload.Job{
			ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1,
			SeqTime: seq, MinProcs: 1, MaxProcs: 1, Model: workload.Linear{},
		}
	}
	// One job too long for the deadline: empty batch.
	if sel, _ := maxWeightBatch([]*workload.Job{mk(1, 100)}, 4, 10); sel != nil {
		t.Fatal("over-deadline job selected")
	}
	// Feasible job: schedule within 3d/2.
	sel, s := maxWeightBatch([]*workload.Job{mk(2, 8)}, 4, 10)
	if len(sel) != 1 || s == nil {
		t.Fatal("feasible job rejected")
	}
	if s.Makespan() > 15+1e-9 {
		t.Fatalf("batch makespan %v exceeds 3d/2", s.Makespan())
	}
}

func TestScheduleManyEqualJobsBatchGrowth(t *testing.T) {
	// With identical unit jobs and m=1, batches must contain
	// geometrically growing job counts (deadline doubling).
	var jobs []*workload.Job
	for i := 0; i < 64; i++ {
		jobs = append(jobs, &workload.Job{
			ID: i, Kind: workload.Rigid, Weight: 1, DueDate: -1,
			SeqTime: 1, MinProcs: 1, MaxProcs: 1, Model: workload.Linear{},
		})
	}
	res, err := Schedule(jobs, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) < 3 {
		t.Skipf("only %d batches", len(res.Batches))
	}
	for i := 1; i < len(res.Batches)-1; i++ { // last batch may be partial
		if res.Batches[i].JobCount < res.Batches[i-1].JobCount {
			t.Fatalf("batch %d count %d below previous %d",
				i, res.Batches[i].JobCount, res.Batches[i-1].JobCount)
		}
	}
}
