// Package workload defines the job model of the paper (rigid, moldable and
// malleable Parallel Tasks, plus divisible multi-parametric bags), the
// speedup models used to price a moldable allocation, and synthetic
// workload generators shaped after the communities described in §5.2 of
// the paper (CIMENT: long sequential physics jobs, short computer-science
// debug jobs, large multi-parametric campaigns).
package workload

import (
	"fmt"
	"math"
)

// Kind classifies a Parallel Task following §2.2 of the paper.
type Kind int

const (
	// Rigid jobs request a fixed number of processors.
	Rigid Kind = iota
	// Moldable jobs accept any processor count in [MinProcs, MaxProcs],
	// decided before execution and fixed afterwards.
	Moldable
	// Malleable jobs may change processor count during execution. The
	// paper explicitly leaves malleability out of scope; the kind exists
	// so workloads can carry the flag and schedulers can reject it.
	Malleable
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Rigid:
		return "rigid"
	case Moldable:
		return "moldable"
	case Malleable:
		return "malleable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Job is a Parallel Task. SeqTime is the sequential execution time on a
// reference processor; the actual execution time on p processors is given
// by the speedup model (or the explicit Times table when present).
//
// All times are in abstract seconds. Weight is the ΣωiCi priority weight
// (1 when the workload is unweighted). DueDate < 0 means "no due date".
type Job struct {
	ID      int
	Name    string
	Class   string // community / application tag ("physics", "cs", "bag", ...)
	Kind    Kind
	Release float64
	Weight  float64
	DueDate float64

	SeqTime  float64
	MinProcs int
	MaxProcs int

	// Model prices a moldable allocation. Ignored when Times is set.
	Model SpeedupModel
	// Times, when non-nil, gives the execution time on p processors at
	// Times[p-1] for p in [1, len(Times)]. Entries must be positive and
	// the table is expected to be monotone non-increasing.
	Times []float64
}

// Validate checks the structural invariants of the job.
func (j *Job) Validate() error {
	switch {
	case j.SeqTime <= 0 && j.Times == nil:
		return fmt.Errorf("job %d: non-positive sequential time %v", j.ID, j.SeqTime)
	case j.MinProcs <= 0:
		return fmt.Errorf("job %d: MinProcs = %d", j.ID, j.MinProcs)
	case j.MaxProcs < j.MinProcs:
		return fmt.Errorf("job %d: MaxProcs %d < MinProcs %d", j.ID, j.MaxProcs, j.MinProcs)
	case j.Kind == Rigid && j.MinProcs != j.MaxProcs:
		return fmt.Errorf("job %d: rigid job with MinProcs %d != MaxProcs %d", j.ID, j.MinProcs, j.MaxProcs)
	case j.Release < 0:
		return fmt.Errorf("job %d: negative release %v", j.ID, j.Release)
	case j.Weight < 0:
		return fmt.Errorf("job %d: negative weight %v", j.ID, j.Weight)
	case j.Model == nil && j.Times == nil:
		return fmt.Errorf("job %d: no speedup model and no time table", j.ID)
	}
	if j.Times != nil {
		if len(j.Times) < j.MaxProcs {
			return fmt.Errorf("job %d: time table of length %d shorter than MaxProcs %d", j.ID, len(j.Times), j.MaxProcs)
		}
		for p, t := range j.Times {
			if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
				return fmt.Errorf("job %d: invalid time %v on %d procs", j.ID, t, p+1)
			}
		}
	}
	return nil
}

// TimeOn returns the execution time of the job on p processors. It panics
// if p is outside [MinProcs, MaxProcs]; use CanRunOn to test first.
func (j *Job) TimeOn(p int) float64 {
	if p < j.MinProcs || p > j.MaxProcs {
		panic(fmt.Sprintf("workload: job %d cannot run on %d procs (range [%d,%d])",
			j.ID, p, j.MinProcs, j.MaxProcs))
	}
	if j.Times != nil {
		return j.Times[p-1]
	}
	return j.Model.Time(j.SeqTime, p)
}

// CanRunOn reports whether p processors is a legal allocation.
func (j *Job) CanRunOn(p int) bool { return p >= j.MinProcs && p <= j.MaxProcs }

// WorkOn returns the work area p * TimeOn(p) of the allocation.
func (j *Job) WorkOn(p int) float64 { return float64(p) * j.TimeOn(p) }

// MinWork returns the minimum work over all legal allocations capped at m
// processors, and the processor count achieving it. For monotone jobs the
// minimum is at MinProcs, but we scan to stay correct for arbitrary
// tables. Returns (0, 0) if no allocation fits within m.
func (j *Job) MinWork(m int) (work float64, procs int) {
	best := math.Inf(1)
	bestP := 0
	hi := j.MaxProcs
	if hi > m {
		hi = m
	}
	for p := j.MinProcs; p <= hi; p++ {
		if w := j.WorkOn(p); w < best {
			best = w
			bestP = p
		}
	}
	if bestP == 0 {
		return 0, 0
	}
	return best, bestP
}

// MinTime returns the minimum execution time over all legal allocations
// capped at m processors, and the processor count achieving it. Returns
// (+Inf, 0) if no allocation fits.
func (j *Job) MinTime(m int) (t float64, procs int) {
	best := math.Inf(1)
	bestP := 0
	hi := j.MaxProcs
	if hi > m {
		hi = m
	}
	for p := j.MinProcs; p <= hi; p++ {
		if tt := j.TimeOn(p); tt < best {
			best = tt
			bestP = p
		}
	}
	return best, bestP
}

// Gamma returns the canonical allotment γ(j, t): the smallest legal
// processor count p ≤ m such that TimeOn(p) ≤ t, or 0 if none exists.
// This is the allotment primitive of the MRT dual-approximation (§4.1):
// among the allocations meeting deadline t, the smallest one minimizes
// work for monotone jobs.
func (j *Job) Gamma(t float64, m int) int {
	hi := j.MaxProcs
	if hi > m {
		hi = m
	}
	// Execution times are non-increasing in p for monotone jobs, so a
	// binary search would do; workloads may carry non-monotone tables, so
	// scan. MaxProcs is small (≤ cluster size) in all our experiments.
	for p := j.MinProcs; p <= hi; p++ {
		if j.TimeOn(p) <= t {
			return p
		}
	}
	return 0
}

// IsMonotone reports whether, up to m processors, execution time is
// non-increasing and work is non-decreasing in the processor count — the
// standard "monotone task" assumption of the moldable literature.
func (j *Job) IsMonotone(m int) bool {
	hi := j.MaxProcs
	if hi > m {
		hi = m
	}
	const eps = 1e-9
	for p := j.MinProcs + 1; p <= hi; p++ {
		if j.TimeOn(p) > j.TimeOn(p-1)*(1+eps) {
			return false
		}
		if j.WorkOn(p) < j.WorkOn(p-1)*(1-eps) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the job.
func (j *Job) Clone() *Job {
	c := *j
	if j.Times != nil {
		c.Times = append([]float64(nil), j.Times...)
	}
	return &c
}

// TotalMinWork sums the minimal work of each job (the area lower bound
// numerator used throughout the experiments).
func TotalMinWork(jobs []*Job, m int) float64 {
	var sum float64
	for _, j := range jobs {
		w, _ := j.MinWork(m)
		sum += w
	}
	return sum
}

// ValidateAll validates every job and checks ID uniqueness.
func ValidateAll(jobs []*Job) error {
	seen := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}
