package workload

import (
	"fmt"

	"repro/internal/stats"
)

// Source is a pull iterator over a job stream. Next returns the next
// job until the stream is exhausted. Sources let simulations admit jobs
// lazily — peak memory tracks the jobs currently in flight, not the
// total stream length — which is what makes multi-million-job archive
// replays feasible.
//
// Sources that can fail mid-stream (e.g. trace readers) additionally
// implement Err() error; consumers check it after Next returns false.
// Streams are expected in non-decreasing Release order (every generator
// here and sorted SWF archives satisfy this); a consumer admitting
// lazily clamps any out-of-order release to its own current time.
type Source interface {
	Next() (*Job, bool)
}

// SizeHinter is an optional Source extension: a known remaining stream
// length lets collectors preallocate.
type SizeHinter interface {
	SizeHint() int
}

// sliceSource iterates over an in-memory job slice.
type sliceSource struct {
	jobs []*Job
	i    int
}

// NewSliceSource adapts a materialized job slice into a Source.
func NewSliceSource(jobs []*Job) Source { return &sliceSource{jobs: jobs} }

func (s *sliceSource) Next() (*Job, bool) {
	if s.i >= len(s.jobs) {
		return nil, false
	}
	j := s.jobs[s.i]
	s.i++
	return j, true
}

func (s *sliceSource) SizeHint() int { return len(s.jobs) - s.i }

// Collect drains a source into a slice (the materialized form the
// offline algorithms need).
func Collect(s Source) []*Job {
	var jobs []*Job
	if h, ok := s.(SizeHinter); ok {
		jobs = make([]*Job, 0, h.SizeHint())
	}
	for {
		j, ok := s.Next()
		if !ok {
			return jobs
		}
		jobs = append(jobs, j)
	}
}

// genSource backs the synthetic generators: gen produces job i, drawing
// from the captured RNG in exactly the order the eager generators did,
// so Collect(XxxSource(cfg)) is byte-identical to Xxx(cfg).
type genSource struct {
	n, i int
	gen  func(i int) *Job
}

func (g *genSource) Next() (*Job, bool) {
	if g.i >= g.n {
		return nil, false
	}
	j := g.gen(g.i)
	g.i++
	return j, true
}

func (g *genSource) SizeHint() int { return g.n - g.i }

// SequentialSource streams the Sequential workload without
// materializing it.
func SequentialSource(cfg GenConfig) Source {
	cfg = cfg.fill()
	rng := stats.NewRNG(cfg.Seed)
	clock := 0.0
	return &genSource{n: cfg.N, gen: func(i int) *Job {
		if cfg.ArrivalRate > 0 {
			clock += rng.Exp(cfg.ArrivalRate)
		}
		j := &Job{
			ID:       i,
			Name:     fmt.Sprintf("seq-%d", i),
			Class:    "sequential",
			Kind:     Rigid,
			Release:  clock,
			Weight:   weight(rng, cfg.Weighted),
			DueDate:  -1,
			SeqTime:  rng.LogNormal(cfg.SeqMu, cfg.SeqSigma),
			MinProcs: 1,
			MaxProcs: 1,
			Model:    Linear{},
		}
		setDueDate(j, rng, cfg.DueDateSlack)
		return j
	}}
}

// ParallelSource streams the Parallel workload without materializing it.
func ParallelSource(cfg GenConfig) Source {
	cfg = cfg.fill()
	rng := stats.NewRNG(cfg.Seed)
	clock := 0.0
	return &genSource{n: cfg.N, gen: func(i int) *Job {
		if cfg.ArrivalRate > 0 {
			clock += rng.Exp(cfg.ArrivalRate)
		}
		seq := rng.LogNormal(cfg.SeqMu, cfg.SeqSigma)
		model := randomModel(rng)
		maxP := rng.IntRange(1, cfg.M)
		if cfg.MaxProcsCap > 0 && maxP > cfg.MaxProcsCap {
			maxP = cfg.MaxProcsCap
		}
		j := &Job{
			ID:       i,
			Name:     fmt.Sprintf("par-%d", i),
			Class:    "parallel",
			Kind:     Moldable,
			Release:  clock,
			Weight:   weight(rng, cfg.Weighted),
			DueDate:  -1,
			SeqTime:  seq,
			MinProcs: 1,
			MaxProcs: maxP,
			Model:    model,
			Times:    MakeTable(model, seq, maxP),
		}
		if rng.Bool(cfg.RigidFraction) {
			p := rng.IntRange(1, maxP)
			j.Kind = Rigid
			j.MinProcs, j.MaxProcs = p, p
		}
		setDueDate(j, rng, cfg.DueDateSlack)
		return j
	}}
}

// MixedSource streams the Mixed (§5.1) workload without materializing it.
func MixedSource(cfg GenConfig) Source {
	if cfg.RigidFraction == 0 {
		cfg.RigidFraction = 0.3
	}
	return ParallelSource(cfg)
}

// CommunitiesSource streams the Communities (§5.2) workload without
// materializing it.
func CommunitiesSource(mix []Community, n, m int, rate float64, seed uint64) Source {
	rng := stats.NewRNG(seed)
	shares := make([]float64, len(mix))
	for i, c := range mix {
		shares[i] = c.Share
	}
	clock := 0.0
	return &genSource{n: n, gen: func(i int) *Job {
		if rate > 0 {
			clock += rng.Exp(rate)
		}
		c := mix[rng.Choice(shares)]
		seq := rng.LogNormal(c.SeqMu, c.SeqSigma)
		maxP := rng.IntRange(c.MaxProcsLo, c.MaxProcsHi)
		if maxP > m {
			maxP = m
		}
		model := SpeedupModel(Amdahl{Alpha: 0.05})
		j := &Job{
			ID:       i,
			Name:     fmt.Sprintf("%s-%d", c.Name, i),
			Class:    c.Name,
			Kind:     Moldable,
			Release:  clock,
			Weight:   c.Weight,
			DueDate:  -1,
			SeqTime:  seq,
			MinProcs: 1,
			MaxProcs: maxP,
			Model:    model,
			Times:    MakeTable(model, seq, maxP),
		}
		if rng.Bool(c.RigidProb) {
			p := rng.IntRange(1, maxP)
			j.Kind = Rigid
			j.MinProcs, j.MaxProcs = p, p
		}
		return j
	}}
}
