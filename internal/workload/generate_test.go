package workload

import (
	"testing"
)

func TestSequentialGenerator(t *testing.T) {
	jobs := Sequential(GenConfig{N: 50, M: 100, Seed: 1})
	if len(jobs) != 50 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	if err := ValidateAll(jobs); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Kind != Rigid || j.MinProcs != 1 || j.MaxProcs != 1 {
			t.Fatalf("sequential job not 1-proc rigid: %+v", j)
		}
		if j.Release != 0 {
			t.Fatalf("offline generator produced release %v", j.Release)
		}
	}
}

func TestSequentialArrivals(t *testing.T) {
	jobs := Sequential(GenConfig{N: 50, Seed: 2, ArrivalRate: 0.1})
	prev := -1.0
	for _, j := range jobs {
		if j.Release < prev {
			t.Fatal("releases not non-decreasing")
		}
		prev = j.Release
	}
	if jobs[49].Release == 0 {
		t.Fatal("arrival rate ignored")
	}
}

func TestSequentialDeterminism(t *testing.T) {
	a := Sequential(GenConfig{N: 20, Seed: 7})
	b := Sequential(GenConfig{N: 20, Seed: 7})
	for i := range a {
		if a[i].SeqTime != b[i].SeqTime {
			t.Fatal("same seed produced different workloads")
		}
	}
	c := Sequential(GenConfig{N: 20, Seed: 8})
	same := true
	for i := range a {
		if a[i].SeqTime != c[i].SeqTime {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestMoldableGenerator(t *testing.T) {
	jobs := Parallel(GenConfig{N: 200, M: 64, Seed: 3})
	if err := ValidateAll(jobs); err != nil {
		t.Fatal(err)
	}
	sawWide := false
	for _, j := range jobs {
		if j.MaxProcs > 64 {
			t.Fatalf("MaxProcs %d exceeds platform width", j.MaxProcs)
		}
		if j.MaxProcs > 32 {
			sawWide = true
		}
		if !j.IsMonotone(64) {
			t.Fatalf("generated job %d not monotone", j.ID)
		}
	}
	if !sawWide {
		t.Fatal("no wide jobs generated in 200 draws")
	}
}

func TestMoldableRigidFraction(t *testing.T) {
	jobs := Parallel(GenConfig{N: 400, M: 32, Seed: 4, RigidFraction: 0.5})
	rigid := 0
	for _, j := range jobs {
		if j.Kind == Rigid {
			rigid++
			if j.MinProcs != j.MaxProcs {
				t.Fatal("rigid job with open range")
			}
		}
	}
	if rigid < 120 || rigid > 280 {
		t.Fatalf("rigid count %d far from 200", rigid)
	}
}

func TestMoldableWeights(t *testing.T) {
	jobs := Parallel(GenConfig{N: 100, M: 16, Seed: 5, Weighted: true})
	varied := false
	for _, j := range jobs {
		if j.Weight < 1 || j.Weight > 10 {
			t.Fatalf("weight %v outside [1,10]", j.Weight)
		}
		if j.Weight != jobs[0].Weight {
			varied = true
		}
	}
	if !varied {
		t.Fatal("weighted generator produced constant weights")
	}
}

func TestMoldableDueDates(t *testing.T) {
	jobs := Parallel(GenConfig{N: 50, M: 16, Seed: 6, DueDateSlack: 3})
	for _, j := range jobs {
		if j.DueDate < j.Release+j.TimeOn(j.MinProcs)-1e-9 {
			t.Fatalf("due date %v unreachable for job %d", j.DueDate, j.ID)
		}
	}
}

func TestMoldableMaxProcsCap(t *testing.T) {
	jobs := Parallel(GenConfig{N: 100, M: 128, Seed: 9, MaxProcsCap: 8})
	for _, j := range jobs {
		if j.MaxProcs > 8 {
			t.Fatalf("cap ignored: MaxProcs %d", j.MaxProcs)
		}
	}
}

func TestMixedDefaults(t *testing.T) {
	jobs := Mixed(GenConfig{N: 300, M: 32, Seed: 10})
	rigid := 0
	for _, j := range jobs {
		if j.Kind == Rigid {
			rigid++
		}
	}
	if rigid == 0 || rigid == 300 {
		t.Fatalf("Mixed produced %d rigid of 300", rigid)
	}
}

func TestCommunities(t *testing.T) {
	mix := CIMENTCommunities()
	var total float64
	for _, c := range mix {
		total += c.Share
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("community shares sum to %v", total)
	}
	jobs := Communities(mix, 500, 104, 0.01, 11)
	if err := ValidateAll(jobs); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, j := range jobs {
		counts[j.Class]++
	}
	for _, c := range mix {
		if counts[c.Name] == 0 {
			t.Fatalf("community %s absent from 500 draws", c.Name)
		}
	}
	// Physics jobs must be sequential rigid per the paper.
	for _, j := range jobs {
		if j.Class == "physics" && (j.Kind != Rigid || j.MaxProcs != 1) {
			t.Fatalf("physics job not sequential rigid: %+v", j)
		}
	}
}

func TestBags(t *testing.T) {
	bags := Bags(50, 12)
	if len(bags) != 50 {
		t.Fatalf("got %d bags", len(bags))
	}
	for _, b := range bags {
		if b.Runs < 200 || b.Runs > 200000 {
			t.Fatalf("bag runs %d outside Pareto bounds", b.Runs)
		}
		if b.RunTime < 10 || b.RunTime > 120 {
			t.Fatalf("run time %v outside [10,120]", b.RunTime)
		}
		if b.TotalWork() != float64(b.Runs)*b.RunTime {
			t.Fatal("TotalWork mismatch")
		}
	}
}

func TestSortByRelease(t *testing.T) {
	jobs := []*Job{
		{ID: 3, Release: 5},
		{ID: 1, Release: 2},
		{ID: 2, Release: 2},
		{ID: 0, Release: 9},
	}
	SortByRelease(jobs)
	wantIDs := []int{1, 2, 3, 0}
	for i, j := range jobs {
		if j.ID != wantIDs[i] {
			t.Fatalf("order at %d = job %d, want %d", i, j.ID, wantIDs[i])
		}
	}
}

func TestDiurnalArrivals(t *testing.T) {
	jobs := Sequential(GenConfig{N: 4000, Seed: 30})
	day := 86400.0
	DiurnalArrivals(jobs, 0.05, day, 0.9, 31)
	// Releases must be increasing.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Release < jobs[i-1].Release {
			t.Fatal("diurnal releases not monotone")
		}
	}
	// Arrivals in the peak half-cycle (sin > 0) must outnumber the
	// trough half-cycle substantially at depth 0.9.
	peak, trough := 0, 0
	for _, j := range jobs {
		phase := j.Release / day
		frac := phase - float64(int(phase))
		if frac < 0.5 {
			peak++
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Fatalf("no diurnal signal: peak=%d trough=%d", peak, trough)
	}
	ratio := float64(peak) / float64(trough)
	if ratio < 1.5 {
		t.Fatalf("diurnal modulation too weak: ratio %v", ratio)
	}
}

func TestDiurnalArrivalsDegenerate(t *testing.T) {
	jobs := Sequential(GenConfig{N: 5, Seed: 32})
	before := jobs[4].Release
	DiurnalArrivals(jobs, 0, 100, 0.5, 1) // zero rate: no-op
	if jobs[4].Release != before {
		t.Fatal("zero-rate DiurnalArrivals mutated releases")
	}
	DiurnalArrivals(jobs, 1, 100, 5, 2) // depth clamped to 1, still valid
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Release < jobs[i-1].Release {
			t.Fatal("clamped-depth releases not monotone")
		}
	}
}
