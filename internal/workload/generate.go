package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// GenConfig parameterizes the synthetic workload generators. Zero values
// are replaced by the documented defaults in fill().
type GenConfig struct {
	// N is the number of jobs to generate.
	N int
	// M is the target platform width; MaxProcs never exceeds it.
	M int
	// Seed drives the deterministic RNG.
	Seed uint64

	// SeqMu, SeqSigma are the lognormal parameters of sequential times.
	SeqMu, SeqSigma float64
	// ArrivalRate is the Poisson arrival rate (jobs per second). Zero
	// means all jobs released at time 0 (the offline case).
	ArrivalRate float64
	// Weighted draws weights from {1..10} with a Zipf bias when true;
	// otherwise every weight is 1.
	Weighted bool
	// RigidFraction is the fraction of jobs forced rigid (their processor
	// count is frozen at a random legal value).
	RigidFraction float64
	// MaxProcsCap caps each job's MaxProcs below M (e.g. memory limits,
	// §2.2). Zero means no extra cap.
	MaxProcsCap int
	// DueDateSlack, when positive, assigns DueDate = Release +
	// slack * TimeOn(MinProcs) with slack drawn in [1, DueDateSlack].
	DueDateSlack float64
}

func (c GenConfig) fill() GenConfig {
	if c.N == 0 {
		c.N = 100
	}
	if c.M == 0 {
		c.M = 100
	}
	if c.SeqMu == 0 {
		c.SeqMu = 5 // median sequential time e^5 ≈ 148 s
	}
	if c.SeqSigma == 0 {
		c.SeqSigma = 1.2
	}
	return c
}

// Sequential generates non-parallel jobs (the "Non Parallel" series of
// Figure 2): rigid single-processor jobs with lognormal durations.
// It materializes SequentialSource; both forms draw the same stream.
func Sequential(cfg GenConfig) []*Job {
	return Collect(SequentialSource(cfg))
}

// Parallel generates moldable parallel jobs (the "Parallel" series of
// Figure 2): lognormal sequential times, mixed speedup models (Amdahl and
// power-law), MaxProcs drawn up to the platform width, an optional rigid
// fraction, all with frozen monotone time tables.
// It materializes ParallelSource; both forms draw the same stream.
func Parallel(cfg GenConfig) []*Job {
	return Collect(ParallelSource(cfg))
}

// Mixed generates the §5.1 scenario: a mix of rigid and moldable jobs on
// the same cluster, with RigidFraction of the jobs frozen.
func Mixed(cfg GenConfig) []*Job {
	return Collect(MixedSource(cfg))
}

// randomModel draws one of the moldable speedup models with workload-level
// diversity: half Amdahl with a small sequential fraction, half power-law.
func randomModel(rng *stats.RNG) SpeedupModel {
	if rng.Bool(0.5) {
		return Amdahl{Alpha: rng.Range(0.01, 0.25)}
	}
	return PowerLaw{Sigma: rng.Range(0.6, 1.0)}
}

func weight(rng *stats.RNG, weighted bool) float64 {
	if !weighted {
		return 1
	}
	return float64(rng.Zipf(1.1, 10))
}

func setDueDate(j *Job, rng *stats.RNG, slackMax float64) {
	if slackMax <= 0 {
		return
	}
	slack := rng.Range(1, math.Max(slackMax, 1.0000001))
	j.DueDate = j.Release + slack*j.TimeOn(j.MinProcs)
}

// Community describes one CIMENT user community (§5.2): its share of the
// job stream and the shape of its jobs.
type Community struct {
	Name string
	// Share is the relative frequency of this community's submissions.
	Share float64
	// SeqMu, SeqSigma shape the lognormal sequential time.
	SeqMu, SeqSigma float64
	// MaxProcsLo, MaxProcsHi bound the per-job MaxProcs draw.
	MaxProcsLo, MaxProcsHi int
	// RigidProb is the probability a job from this community is rigid.
	RigidProb float64
	// Weight is the fixed priority weight for this community's jobs.
	Weight float64
}

// CIMENTCommunities returns the community mix described in §5.2: numerical
// physicists submit long (up to weeks) sequential jobs; computer
// scientists submit short debug jobs; a third community submits mid-size
// parallel production jobs (astrophysics / medical imaging).
func CIMENTCommunities() []Community {
	return []Community{
		{
			Name: "physics", Share: 0.35,
			// median ~8h, heavy tail to multi-day
			SeqMu: math.Log(8 * 3600), SeqSigma: 1.4,
			MaxProcsLo: 1, MaxProcsHi: 1, RigidProb: 1, Weight: 1,
		},
		{
			Name: "cs-debug", Share: 0.45,
			// median ~3min
			SeqMu: math.Log(180), SeqSigma: 1.0,
			MaxProcsLo: 1, MaxProcsHi: 16, RigidProb: 0.5, Weight: 2,
		},
		{
			Name: "astro", Share: 0.20,
			// median ~1h parallel production runs
			SeqMu: math.Log(3600), SeqSigma: 1.1,
			MaxProcsLo: 4, MaxProcsHi: 64, RigidProb: 0.3, Weight: 1,
		},
	}
}

// Communities generates n jobs drawn from the given community mix with
// Poisson arrivals at the given rate (jobs/second). Jobs are clipped to
// the platform width m.
// It materializes CommunitiesSource; both forms draw the same stream.
func Communities(mix []Community, n, m int, rate float64, seed uint64) []*Job {
	return Collect(CommunitiesSource(mix, n, m, rate, seed))
}

// Bag is a multi-parametric job (§5.2): a large number of short
// independent runs of the same program with different parameters. It is
// the divisible-load application class of the paper and the payload of
// the CiGri best-effort grid.
type Bag struct {
	ID int
	// Runs is the number of elementary tasks in the campaign.
	Runs int
	// RunTime is the duration of one elementary task (≈ identical across
	// runs, as the paper notes).
	RunTime float64
	// Release is the submission time of the campaign.
	Release float64
	// Name tags the campaign in traces.
	Name string
}

// TotalWork returns Runs * RunTime.
func (b *Bag) TotalWork() float64 { return float64(b.Runs) * b.RunTime }

// Bags generates multi-parametric campaigns with bounded-Pareto run counts
// (hundreds to hundreds of thousands of runs) and short per-run times.
func Bags(n int, seed uint64) []*Bag {
	rng := stats.NewRNG(seed)
	bags := make([]*Bag, n)
	for i := range bags {
		runs := int(rng.BoundedPareto(0.9, 200, 200000))
		bags[i] = &Bag{
			ID:      i,
			Runs:    runs,
			RunTime: rng.Range(10, 120),
			Release: 0,
			Name:    fmt.Sprintf("bag-%d", i),
		}
	}
	return bags
}

// SortByRelease orders jobs by release date (stable by ID) in place.
func SortByRelease(jobs []*Job) {
	// insertion sort is fine for test sizes; experiments use sort.Slice
	// via the sched package. Keep a simple deterministic ordering here.
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && less(jobs[k], jobs[k-1]); k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}

func less(a, b *Job) bool {
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	return a.ID < b.ID
}

// DiurnalArrivals rewrites the release dates of jobs with a
// non-homogeneous Poisson process whose rate follows a daily cycle —
// grid submission streams peak during working hours (the §5.2 community
// behaviour). The mean rate over a full day equals rate; the
// instantaneous rate oscillates between (1-depth)·rate and
// (1+depth)·rate with period dayLength. Jobs keep their submission
// order. Implemented by thinning: candidate arrivals at the peak rate
// are accepted with probability rate(t)/peak.
func DiurnalArrivals(jobs []*Job, rate, dayLength, depth float64, seed uint64) {
	if rate <= 0 || dayLength <= 0 {
		return
	}
	if depth < 0 {
		depth = 0
	}
	if depth > 1 {
		depth = 1
	}
	rng := stats.NewRNG(seed)
	peak := rate * (1 + depth)
	clock := 0.0
	for _, j := range jobs {
		for {
			clock += rng.Exp(peak)
			// rate(t) = rate * (1 + depth·sin(2πt/day))
			instant := rate * (1 + depth*math.Sin(2*math.Pi*clock/dayLength))
			if rng.Float64() < instant/peak {
				break
			}
		}
		j.Release = clock
	}
}
