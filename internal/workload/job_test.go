package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func testJob(seq float64, minP, maxP int, m SpeedupModel) *Job {
	return &Job{
		ID: 1, Kind: Moldable, Weight: 1, DueDate: -1,
		SeqTime: seq, MinProcs: minP, MaxProcs: maxP, Model: m,
	}
}

func TestValidate(t *testing.T) {
	ok := testJob(10, 1, 4, Linear{})
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Job)
	}{
		{"zero seq", func(j *Job) { j.SeqTime = 0; j.Times = nil }},
		{"zero minprocs", func(j *Job) { j.MinProcs = 0 }},
		{"max<min", func(j *Job) { j.MaxProcs = 0 }},
		{"rigid range", func(j *Job) { j.Kind = Rigid }},
		{"neg release", func(j *Job) { j.Release = -1 }},
		{"neg weight", func(j *Job) { j.Weight = -1 }},
		{"no model", func(j *Job) { j.Model = nil }},
		{"short table", func(j *Job) { j.Times = []float64{5} }},
		{"bad table entry", func(j *Job) { j.Times = []float64{5, 3, -1, 2} }},
	}
	for _, c := range cases {
		j := testJob(10, 1, 4, Linear{})
		c.mut(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: invalid job accepted", c.name)
		}
	}
}

func TestValidateAllDuplicateID(t *testing.T) {
	a := testJob(10, 1, 2, Linear{})
	b := testJob(10, 1, 2, Linear{})
	if err := ValidateAll([]*Job{a, b}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestTimeOnLinear(t *testing.T) {
	j := testJob(12, 1, 4, Linear{})
	if got := j.TimeOn(3); math.Abs(got-4) > 1e-12 {
		t.Fatalf("TimeOn(3) = %v, want 4", got)
	}
}

func TestTimeOnTableOverridesModel(t *testing.T) {
	j := testJob(12, 1, 3, Linear{})
	j.Times = []float64{12, 7, 5}
	if got := j.TimeOn(2); got != 7 {
		t.Fatalf("TimeOn(2) = %v, want table value 7", got)
	}
}

func TestTimeOnPanicsOutOfRange(t *testing.T) {
	j := testJob(10, 2, 4, Linear{})
	defer func() {
		if recover() == nil {
			t.Fatal("TimeOn(1) below MinProcs did not panic")
		}
	}()
	j.TimeOn(1)
}

func TestGamma(t *testing.T) {
	j := testJob(12, 1, 6, Linear{})
	// TimeOn(p) = 12/p; Gamma(4) should be 3.
	if got := j.Gamma(4, 6); got != 3 {
		t.Fatalf("Gamma(4) = %d, want 3", got)
	}
	// Unreachable deadline.
	if got := j.Gamma(1, 6); got != 0 {
		t.Fatalf("Gamma(1) = %d, want 0", got)
	}
	// Cap by m.
	if got := j.Gamma(4, 2); got != 0 {
		t.Fatalf("Gamma(4, m=2) = %d, want 0", got)
	}
	// Deadline exactly at boundary.
	if got := j.Gamma(12, 6); got != 1 {
		t.Fatalf("Gamma(12) = %d, want 1", got)
	}
}

func TestMinWorkMinTime(t *testing.T) {
	j := testJob(10, 1, 4, Amdahl{Alpha: 0.2})
	w, p := j.MinWork(4)
	if p != 1 || math.Abs(w-10) > 1e-12 {
		t.Fatalf("MinWork = (%v, %d), want (10, 1)", w, p)
	}
	tm, pm := j.MinTime(4)
	if pm != 4 {
		t.Fatalf("MinTime procs = %d, want 4", pm)
	}
	want := 10 * (0.2 + 0.8/4)
	if math.Abs(tm-want) > 1e-12 {
		t.Fatalf("MinTime = %v, want %v", tm, want)
	}
}

func TestMinWorkNoFit(t *testing.T) {
	j := testJob(10, 4, 8, Linear{})
	if w, p := j.MinWork(2); w != 0 || p != 0 {
		t.Fatalf("MinWork below MinProcs = (%v,%d), want (0,0)", w, p)
	}
	if tm, p := j.MinTime(2); !math.IsInf(tm, 1) || p != 0 {
		t.Fatalf("MinTime below MinProcs = (%v,%d)", tm, p)
	}
}

func TestIsMonotone(t *testing.T) {
	if !testJob(10, 1, 16, Amdahl{Alpha: 0.1}).IsMonotone(16) {
		t.Fatal("Amdahl should be monotone")
	}
	if !testJob(10, 1, 16, PowerLaw{Sigma: 0.8}).IsMonotone(16) {
		t.Fatal("PowerLaw(0.8) should be monotone")
	}
	// CommPenalty with large overhead is not time-monotone.
	j := testJob(10, 1, 32, CommPenalty{Overhead: 2})
	if j.IsMonotone(32) {
		t.Fatal("CommPenalty(2) should not be monotone over 32 procs")
	}
	// But the Monotone wrapper fixes time-monotony.
	j2 := testJob(10, 1, 32, Monotone{Base: CommPenalty{Overhead: 2}})
	for p := 2; p <= 32; p++ {
		if j2.TimeOn(p) > j2.TimeOn(p-1)+1e-12 {
			t.Fatalf("Monotone wrapper not non-increasing at p=%d", p)
		}
	}
}

func TestMakeTableMonotone(t *testing.T) {
	table := MakeTable(CommPenalty{Overhead: 5}, 100, 50)
	for p := 1; p < 50; p++ {
		if table[p] > table[p-1]+1e-12 {
			t.Fatalf("table increases at p=%d: %v -> %v", p, table[p-1], table[p])
		}
	}
}

func TestClone(t *testing.T) {
	j := testJob(10, 1, 3, Linear{})
	j.Times = []float64{10, 5, 4}
	c := j.Clone()
	c.Times[0] = 99
	if j.Times[0] == 99 {
		t.Fatal("Clone shares the Times slice")
	}
}

func TestKindString(t *testing.T) {
	if Rigid.String() != "rigid" || Moldable.String() != "moldable" || Malleable.String() != "malleable" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestSpeedupModels(t *testing.T) {
	cases := []struct {
		m    SpeedupModel
		p    int
		want float64
	}{
		{Linear{}, 4, 25},
		{Amdahl{Alpha: 0.5}, 4, 100 * (0.5 + 0.5/4)},
		{PowerLaw{Sigma: 1}, 4, 25},
		{PowerLaw{Sigma: 0.5}, 4, 50},
		{CommPenalty{Overhead: 1}, 4, 28},
	}
	for _, c := range cases {
		if got := c.m.Time(100, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s.Time(100,%d) = %v, want %v", c.m.Name(), c.p, got, c.want)
		}
	}
}

func TestDowneySpeedupBounds(t *testing.T) {
	for _, sigma := range []float64{0.3, 1.0, 2.0} {
		d := Downey{A: 16, Sigma: sigma}
		prev := math.Inf(1)
		for p := 1; p <= 64; p++ {
			tm := d.Time(100, p)
			sp := 100 / tm
			if sp < 1-1e-9 || sp > float64(p)+1e-9 {
				t.Fatalf("sigma=%v p=%d: speedup %v outside [1, p]", sigma, p, sp)
			}
			if sp > 16+1e-9 {
				t.Fatalf("sigma=%v p=%d: speedup %v exceeds A", sigma, p, sp)
			}
			_ = prev
			prev = tm
		}
	}
}

func TestDowneyDegenerate(t *testing.T) {
	d := Downey{A: 1, Sigma: 0.5}
	if got := d.Time(100, 8); got != 100 {
		t.Fatalf("A=1 job should not speed up, got %v", got)
	}
}

func TestTotalMinWork(t *testing.T) {
	jobs := []*Job{
		testJob(10, 1, 4, Linear{}),
		testJob(20, 1, 4, Linear{}),
	}
	jobs[1].ID = 2
	if got := TotalMinWork(jobs, 4); math.Abs(got-30) > 1e-12 {
		t.Fatalf("TotalMinWork = %v, want 30", got)
	}
}

// Property: for any monotonized table, Gamma returns the smallest feasible
// allotment and TimeOn(Gamma) meets the deadline.
func TestGammaProperty(t *testing.T) {
	f := func(seed uint64, seqRaw, deadlineRaw float64, maxPRaw uint8) bool {
		seq := 1 + math.Abs(math.Mod(seqRaw, 1000))
		maxP := int(maxPRaw%32) + 1
		j := testJob(seq, 1, maxP, Monotone{Base: Amdahl{Alpha: 0.1}})
		j.Times = MakeTable(j.Model, seq, maxP)
		d := math.Abs(math.Mod(deadlineRaw, 2*seq)) + 1e-6
		g := j.Gamma(d, maxP)
		if g == 0 {
			// No allocation meets d: the fastest must exceed d.
			tm, _ := j.MinTime(maxP)
			return tm > d
		}
		if j.TimeOn(g) > d {
			return false
		}
		// Minimality.
		return g == 1 || j.TimeOn(g-1) > d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MakeTable output is always non-increasing.
func TestMakeTableProperty(t *testing.T) {
	f := func(alphaRaw, seqRaw float64, maxPRaw uint8) bool {
		alpha := math.Abs(math.Mod(alphaRaw, 1))
		seq := 1 + math.Abs(math.Mod(seqRaw, 1e6))
		maxP := int(maxPRaw%100) + 1
		table := MakeTable(Amdahl{Alpha: alpha}, seq, maxP)
		for p := 1; p < maxP; p++ {
			if table[p] > table[p-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
