package workload

import (
	"reflect"
	"testing"
)

// jobEqual compares every field including the Times table.
func jobsEqual(t *testing.T, label string, want, got []*Job) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d jobs", label, len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("%s: job %d differs:\nwant %+v\ngot  %+v", label, i, want[i], got[i])
		}
	}
}

// TestSourcesMatchGenerators pins the contract the goldens depend on:
// the streaming sources draw the exact same RNG sequence as the eager
// generators, for every model and a spread of configurations.
func TestSourcesMatchGenerators(t *testing.T) {
	cfgs := []GenConfig{
		{},
		{N: 257, M: 48, Seed: 7, ArrivalRate: 0.25},
		{N: 100, M: 64, Seed: 42, Weighted: true, RigidFraction: 0.4, DueDateSlack: 3},
		{N: 31, M: 128, Seed: 9, ArrivalRate: 2, MaxProcsCap: 10},
	}
	for _, cfg := range cfgs {
		jobsEqual(t, "sequential", Sequential(cfg), Collect(SequentialSource(cfg)))
		jobsEqual(t, "parallel", Parallel(cfg), Collect(ParallelSource(cfg)))
		jobsEqual(t, "mixed", Mixed(cfg), Collect(MixedSource(cfg)))
	}
	mix := CIMENTCommunities()
	jobsEqual(t, "communities",
		Communities(mix, 300, 64, 0.1, 11),
		Collect(CommunitiesSource(mix, 300, 64, 0.1, 11)))
}

// TestSourceReleaseOrder pins the lazy-admission prerequisite: every
// generator emits jobs in non-decreasing release order.
func TestSourceReleaseOrder(t *testing.T) {
	srcs := map[string]Source{
		"sequential":  SequentialSource(GenConfig{N: 500, Seed: 3, ArrivalRate: 0.5}),
		"parallel":    ParallelSource(GenConfig{N: 500, Seed: 3, ArrivalRate: 5}),
		"communities": CommunitiesSource(CIMENTCommunities(), 500, 64, 1, 3),
	}
	for name, src := range srcs {
		last := 0.0
		for {
			j, ok := src.Next()
			if !ok {
				break
			}
			if j.Release < last {
				t.Fatalf("%s: release went backwards: %v after %v", name, j.Release, last)
			}
			last = j.Release
		}
	}
}

func TestSliceSourceAndSizeHint(t *testing.T) {
	jobs := Parallel(GenConfig{N: 10})
	src := NewSliceSource(jobs)
	if h := src.(SizeHinter).SizeHint(); h != 10 {
		t.Fatalf("SizeHint = %d, want 10", h)
	}
	if _, ok := src.Next(); !ok {
		t.Fatal("empty source")
	}
	if h := src.(SizeHinter).SizeHint(); h != 9 {
		t.Fatalf("SizeHint after Next = %d, want 9", h)
	}
	got := Collect(src)
	if len(got) != 9 || got[0] != jobs[1] {
		t.Fatalf("Collect returned %d jobs", len(got))
	}
}
