package workload

import (
	"fmt"
	"math"
)

// SpeedupModel prices the execution time of a task on p processors given
// its sequential time. Implementations must return positive times for
// p >= 1. The PT model of the paper folds all communication costs into
// this per-task penalty (§4: "communications are considered by a global
// penalty factor").
type SpeedupModel interface {
	// Time returns the execution time of a task of sequential duration
	// seq on p processors.
	Time(seq float64, p int) float64
	// Name identifies the model in traces and experiment tables.
	Name() string
}

// Linear is the ideal (communication-free) model: time = seq / p.
type Linear struct{}

// Time implements SpeedupModel.
func (Linear) Time(seq float64, p int) float64 { return seq / float64(p) }

// Name implements SpeedupModel.
func (Linear) Name() string { return "linear" }

// Amdahl is the classical Amdahl model with sequential fraction Alpha:
// time = seq * (Alpha + (1-Alpha)/p). Monotone for Alpha in [0, 1].
type Amdahl struct {
	Alpha float64
}

// Time implements SpeedupModel.
func (a Amdahl) Time(seq float64, p int) float64 {
	return seq * (a.Alpha + (1-a.Alpha)/float64(p))
}

// Name implements SpeedupModel.
func (a Amdahl) Name() string { return fmt.Sprintf("amdahl(%.2f)", a.Alpha) }

// PowerLaw models sub-linear speedup: time = seq / p^Sigma with
// Sigma in (0, 1]. Sigma = 1 is linear speedup. Monotone for Sigma ≤ 1.
type PowerLaw struct {
	Sigma float64
}

// Time implements SpeedupModel.
func (m PowerLaw) Time(seq float64, p int) float64 {
	return seq / math.Pow(float64(p), m.Sigma)
}

// Name implements SpeedupModel.
func (m PowerLaw) Name() string { return fmt.Sprintf("powerlaw(%.2f)", m.Sigma) }

// CommPenalty is the paper's global-penalty view made concrete: perfect
// parallelism plus a per-processor coordination overhead,
// time = seq/p + Overhead * (p-1). It is monotone in time only while the
// overhead term stays small; the Monotone wrapper below restores the
// monotone-task assumption where needed.
type CommPenalty struct {
	Overhead float64
}

// Time implements SpeedupModel.
func (c CommPenalty) Time(seq float64, p int) float64 {
	return seq/float64(p) + c.Overhead*float64(p-1)
}

// Name implements SpeedupModel.
func (c CommPenalty) Name() string { return fmt.Sprintf("commpenalty(%.3g)", c.Overhead) }

// Downey is a simplified version of Downey's speedup model, parameterized
// by the average parallelism A and the variance parameter Sigma, the
// standard synthetic model for moldable supercomputer jobs.
//
// For Sigma <= 1 (low variance):
//
//	S(p) = A*p / (A + Sigma/2*(p-1))              for 1 <= p <= A
//	S(p) = A*p / (Sigma*(A-1/2) + p*(1-Sigma/2))  for A <= p <= 2A-1
//	S(p) = A                                      for p >= 2A-1
//
// For Sigma >= 1 (high variance):
//
//	S(p) = p*A*(Sigma+1) / (Sigma*(p+A-1) + A)  for 1 <= p <= A+A*Sigma-Sigma
//	S(p) = A                                    otherwise
type Downey struct {
	A     float64
	Sigma float64
}

// speedup returns Downey's S(p).
func (d Downey) speedup(p int) float64 {
	pf := float64(p)
	a, s := d.A, d.Sigma
	if a <= 1 {
		return 1
	}
	var sp float64
	if s <= 1 {
		switch {
		case pf <= a:
			sp = a * pf / (a + s/2*(pf-1))
		case pf <= 2*a-1:
			sp = a * pf / (s*(a-0.5) + pf*(1-s/2))
		default:
			sp = a
		}
	} else {
		if pf <= a+a*s-s {
			sp = pf * a * (s + 1) / (s*(pf+a-1) + a)
		} else {
			sp = a
		}
	}
	if sp < 1 {
		sp = 1
	}
	if sp > pf {
		sp = pf
	}
	return sp
}

// Time implements SpeedupModel.
func (d Downey) Time(seq float64, p int) float64 { return seq / d.speedup(p) }

// Name implements SpeedupModel.
func (d Downey) Name() string { return fmt.Sprintf("downey(A=%.1f,s=%.2f)", d.A, d.Sigma) }

// Monotone wraps a model and enforces the monotone-task assumption: time
// non-increasing in p (by taking the running minimum over processor
// counts) and therefore work non-decreasing wherever the base model is
// convex enough. The moldable algorithms of §4 assume monotony.
type Monotone struct {
	Base SpeedupModel
}

// Time implements SpeedupModel. The running minimum is computed from p=1,
// which costs O(p) per call; callers on hot paths should materialize a
// Times table with MakeTable instead.
func (m Monotone) Time(seq float64, p int) float64 {
	best := math.Inf(1)
	for q := 1; q <= p; q++ {
		if t := m.Base.Time(seq, q); t < best {
			best = t
		}
	}
	return best
}

// Name implements SpeedupModel.
func (m Monotone) Name() string { return "monotone(" + m.Base.Name() + ")" }

// MakeTable materializes the execution-time table of a model for
// p = 1..maxProcs, clamping to enforce time-monotony. The resulting table
// can be assigned to Job.Times to freeze the job's profile.
func MakeTable(model SpeedupModel, seq float64, maxProcs int) []float64 {
	table := make([]float64, maxProcs)
	best := math.Inf(1)
	for p := 1; p <= maxProcs; p++ {
		t := model.Time(seq, p)
		if t < best {
			best = t
		}
		table[p-1] = best
	}
	return table
}
