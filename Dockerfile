# Build stage: static binaries (the module is stdlib-only, so no
# dependency download step).
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -o /out/gridd ./cmd/gridd \
 && CGO_ENABLED=0 go build -trimpath -o /out/gridctl ./cmd/gridctl

# Runtime stage: gridd with a persistent run store at /data. The same
# image runs as coordinator (default command) or worker (override the
# command with -worker -coordinator http://coordinator:8042).
FROM alpine:3.20
COPY --from=build /out/gridd /out/gridctl /usr/local/bin/
VOLUME /data
EXPOSE 8042
ENTRYPOINT ["gridd"]
CMD ["-addr", ":8042", "-data-dir", "/data"]
