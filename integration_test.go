package repro

// End-to-end integration tests: full pipelines through the public facade
// and the experiments drivers, plus determinism goldens (same seed ⇒
// bit-identical outputs) so refactors cannot silently change results.

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func TestDeterminismAcrossRuns(t *testing.T) {
	render := func() string {
		tb, err := experiments.MRTTable(42, experiments.Scale{JobFactor: 20})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tb.Write(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed produced different tables:\n%s\n---\n%s", a, b)
	}
}

func TestDeterminismFig2(t *testing.T) {
	run := func() []Fig2Point {
		pts, err := Fig2Series(Fig2Config{M: 32, Ns: []int{20}, Seed: 9, Reps: 2, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(), run()
	if a[0].CmaxRatio != b[0].CmaxRatio || a[0].WCRatio != b[0].WCRatio {
		t.Fatalf("Fig2 not deterministic: %+v vs %+v", a[0], b[0])
	}
}

func TestEveryExperimentRunsAtTestScale(t *testing.T) {
	sc := experiments.Scale{JobFactor: 20}
	drivers := map[string]func(uint64, experiments.Scale) (*trace.Table, error){
		"mrt":           experiments.MRTTable,
		"batch":         experiments.BatchTable,
		"smart":         experiments.SMARTTable,
		"bicriteria":    experiments.BiCriteriaTable,
		"dlt":           experiments.DLTTable,
		"cigri":         experiments.CiGriTable,
		"decentralized": experiments.DecentralizedTable,
		"mixed":         experiments.MixedTable,
		"reservations":  experiments.ReservationsTable,
		"malleable":     experiments.MalleableTable,
		"treedlt":       experiments.TreeDLTTable,
		"criteria":      experiments.CriteriaMatrixTable,
		"heterogrid":    experiments.HeteroGridTable,
	}
	for name, fn := range drivers {
		tb, err := fn(1, sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sb strings.Builder
		if err := tb.Write(&sb); err != nil {
			t.Fatalf("%s: render: %v", name, err)
		}
		if !strings.Contains(sb.String(), tb.Headers[0]) {
			t.Fatalf("%s: header missing from render", name)
		}
	}
}

func TestFullPipelineCIMENTGrid(t *testing.T) {
	// Facade-level CiGri run: CIMENT platform, community jobs, one bag.
	g := CIMENT()
	var members []GridMember
	id := 0
	seed := uint64(3)
	for _, cl := range g.Clusters {
		jobs := CommunityJobs(CIMENTCommunities(), 8, cl.Procs(), 0.005, seed)
		seed++
		for _, j := range jobs {
			j.ID = id
			id++
		}
		members = append(members, GridMember{Cluster: cl, Policy: EASY, Local: jobs})
	}
	bags := []*Bag{{ID: 0, Runs: 300, RunTime: 45, Name: "it"}}
	grid, err := NewCentralizedGrid(members, bags, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Run(); err != nil {
		t.Fatal(err)
	}
	if grid.Stats().TasksCompleted != 300 {
		t.Fatalf("grid completed %d of 300", grid.Stats().TasksCompleted)
	}
	total := 0
	for i := 0; i < grid.Members(); i++ {
		total += len(grid.LocalCompletions(i))
	}
	if total != id {
		t.Fatalf("local completions %d of %d", total, id)
	}
}

func TestRecommendationsAreConsistentWithRun(t *testing.T) {
	// Every non-divisible profile must execute through Run and yield a
	// schedule whose criteria beat a naive 10x-of-bound sanity envelope.
	const m = 16
	for _, p := range []Profile{
		{Moldable: true},
		{Moldable: true, Online: true},
		{Criterion: WeightedCompletion},
		{Criterion: BiCriteria, Moldable: true},
		{},
		{Online: true},
	} {
		cfg := GenConfig{N: 30, M: m, Seed: 5, Weighted: true}
		if p.Online {
			cfg.ArrivalRate = 0.2
		}
		if !p.Moldable {
			cfg.RigidFraction = 1
		}
		jobs := ParallelJobs(cfg)
		s, rec, err := Run(jobs, m, p)
		if err != nil {
			t.Fatalf("%+v (%s): %v", p, rec.Policy, err)
		}
		if ratio := s.Report().Makespan / CmaxLowerBound(jobs, m); ratio > 10 {
			t.Fatalf("%s: Cmax ratio %v fails the sanity envelope", rec.Policy, ratio)
		}
	}
}
